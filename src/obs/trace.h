// Packet flight recorder: per-shard-lane ring buffers of compact trace
// records, merged deterministically at dump time.
//
// Every interesting data-plane transition (enqueue/dequeue/drop/ECN-mark/
// PFC-pause/route-decision/CC-rate-change/link up-down/failover) can be
// recorded with one LCMP_TRACE call. When tracing is off the call is a
// single predictable branch on a global flag; builds that must strip even
// that from the per-packet path can define LCMP_OBS_STRIP_TRACE.
//
// Sharded runs (`--shards>1`) record from one worker thread per shard. Each
// worker writes into its own lane ring (see obs/shard_context.h), so there
// is no cross-shard lock contention on the record path, and every record is
// stamped with the emitting event's (sim-time, lineage-key) pair. Because
// (ts, key) totally orders events identically in every shard layout, a
// stable sort of the concatenated lanes reproduces the exact record order a
// sequential run would have produced — dumps are bit-comparable across
// shard counts, which is what lets the `--shards>1` fail-fast be lifted
// without giving up the determinism guard.
//
// Records are 40 bytes and live in preallocated per-lane rings, so recording
// never allocates after first use and old records are overwritten FIFO per
// lane. Filters restrict recording to one flow id and/or one node id so a
// 13-DC run can shadow a single flow. The merged ring is dumped on demand
// (--trace-out) and automatically to stderr when an LCMP_CHECK fails, so
// crashes ship their last N thousand events.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/shard_context.h"

namespace lcmp {
namespace obs {

extern std::atomic<bool> g_trace_enabled;
inline bool TraceEnabled() {
  return __builtin_expect(g_trace_enabled.load(std::memory_order_relaxed), 0);
}

enum class TraceEv : uint8_t {
  kEnqueue = 0,
  kDequeue,
  kDrop,
  kEcnMark,
  kPfcPause,
  kPfcResume,
  kRouteDecision,
  kCcRateChange,
  kLinkDown,
  kLinkUp,
  kLinkDegraded,   // fault injection: rate cut / added delay / loss applied
  kLinkRestored,   // fault injection: degradation removed
  kFailover,       // router invalidated a cached port onto a dead path
};
const char* TraceEvName(TraceEv ev);

// One ring entry. Packed to 40 bytes so the default 64Ki-deep lane ring
// costs 2.5 MiB. `aux` is event-specific: queue bytes for enqueue/dequeue/
// drop/mark, buffered bytes for PFC, the fallback flag for route decisions,
// the new rate in bps for CC changes, the invalidated port for failovers.
// `key` is the emitting event's lineage key and `shard` the emitting shard
// (-1 for unsharded/control) — the merge stamp described above.
struct TraceRecord {
  TimeNs ts = 0;
  uint64_t flow = 0;
  int64_t aux = 0;
  uint64_t key = 0;
  NodeId node = kInvalidNode;
  int16_t port = -1;
  TraceEv ev = TraceEv::kEnqueue;
  int8_t shard = -1;
};
static_assert(sizeof(TraceRecord) == 40, "trace records must stay compact");

class FlightRecorder {
 public:
  static FlightRecorder& Instance();

  // Sizes each lane's ring (records). Discards existing contents.
  void Configure(size_t capacity);
  // Restricts recording: a record is kept when no filter is set, or when its
  // flow matches `flow_filter` (>= 0), or its node matches `node_filter`
  // (>= 0). Events that carry no flow (PFC, link state) pass the node filter.
  void SetFilters(int64_t flow_filter, NodeId node_filter);

  // Turns recording on/off; enabling installs the LCMP_CHECK failure hook
  // that dumps the merged ring to stderr before the process traps.
  void Enable(bool on);

  void Record(TraceEv ev, TimeNs ts, FlowId flow, NodeId node, PortIndex port, int64_t aux);

  // Oldest-first dump of the merged record stream, one CSV row per record.
  void Dump(std::FILE* out) const;
  bool DumpToFile(const std::string& path) const;

  // Every held record, merged across lanes and stably sorted by (ts, key).
  // This is the deterministic global order; trace_export consumes it too.
  std::vector<TraceRecord> MergedRecords() const;

  void Clear();

  // Records currently held across all lanes (<= lanes * capacity).
  size_t size() const;
  // Per-lane ring capacity.
  size_t capacity() const;
  // All records accepted, including ones the rings have since overwritten.
  uint64_t total_recorded() const;
  // i-th held record in merged order, oldest first (test introspection;
  // rebuilds the merge per call — not for hot paths).
  TraceRecord at(size_t i) const;

 private:
  // One ring per obs lane. Workers write only their own lane, so the mutex
  // is effectively uncontended on the record path; it exists for the merge
  // readers and for sweep-runner simulators sharing lane 0.
  struct Lane {
    mutable std::mutex mu;
    std::vector<TraceRecord> ring;
    size_t head = 0;  // next write position
    size_t size = 0;
    uint64_t total = 0;
  };

  FlightRecorder();

  // Returns lane `i`, creating it (sized to the configured capacity) on
  // first use. Lazy so a sequential run pays for one ring, not 17.
  Lane& LaneAt(int i);
  const Lane* LanePtr(int i) const { return lanes_[i].load(std::memory_order_acquire); }

  std::atomic<size_t> capacity_;
  std::atomic<int64_t> flow_filter_{-1};
  std::atomic<NodeId> node_filter_{kInvalidNode};
  std::array<std::atomic<Lane*>, kNumShardLanes> lanes_{};
  std::mutex create_mu_;  // guards lane creation and Configure/Clear sweeps
};

}  // namespace obs
}  // namespace lcmp

#if defined(LCMP_OBS_STRIP_TRACE)
#define LCMP_TRACE(ev, ts, flow, node, port, aux) \
  do {                                            \
  } while (0)
#else
// Single predictable branch when tracing is off; arguments are not evaluated
// unless the recorder is enabled.
#define LCMP_TRACE(ev, ts, flow, node, port, aux)                                        \
  do {                                                                                   \
    if (::lcmp::obs::TraceEnabled()) {                                                   \
      ::lcmp::obs::FlightRecorder::Instance().Record((ev), (ts), (flow), (node), (port), \
                                                     (aux));                             \
    }                                                                                    \
  } while (0)
#endif
