// Packet flight recorder: a fixed-size ring buffer of compact trace records.
//
// Every interesting data-plane transition (enqueue/dequeue/drop/ECN-mark/
// PFC-pause/route-decision/CC-rate-change/link up-down) can be recorded with
// one LCMP_TRACE call. When tracing is off the call is a single predictable
// branch on a global flag; builds that must strip even that from the
// per-packet path can define LCMP_OBS_STRIP_TRACE.
//
// Records are 32 bytes and live in a preallocated ring, so recording never
// allocates and old records are overwritten FIFO. Filters restrict recording
// to one flow id and/or one node id so a 13-DC run can shadow a single flow.
// The ring is dumped on demand (--trace-out) and automatically to stderr
// when an LCMP_CHECK fails, so crashes ship their last N thousand events.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace lcmp {
namespace obs {

extern std::atomic<bool> g_trace_enabled;
inline bool TraceEnabled() {
  return __builtin_expect(g_trace_enabled.load(std::memory_order_relaxed), 0);
}

enum class TraceEv : uint8_t {
  kEnqueue = 0,
  kDequeue,
  kDrop,
  kEcnMark,
  kPfcPause,
  kPfcResume,
  kRouteDecision,
  kCcRateChange,
  kLinkDown,
  kLinkUp,
  kLinkDegraded,   // fault injection: rate cut / added delay / loss applied
  kLinkRestored,   // fault injection: degradation removed
};
const char* TraceEvName(TraceEv ev);

// One ring entry. Packed to 32 bytes so the default 64Ki-deep ring costs
// 2 MiB. `aux` is event-specific: queue bytes for enqueue/dequeue/drop/mark,
// buffered bytes for PFC, the fallback flag for route decisions, the new
// rate in bps for CC changes.
struct TraceRecord {
  TimeNs ts = 0;
  uint64_t flow = 0;
  int64_t aux = 0;
  NodeId node = kInvalidNode;
  int16_t port = -1;
  TraceEv ev = TraceEv::kEnqueue;
  uint8_t pad = 0;
};
static_assert(sizeof(TraceRecord) == 32, "trace records must stay compact");

class FlightRecorder {
 public:
  static FlightRecorder& Instance();

  // Sizes the ring (records). Discards existing contents.
  void Configure(size_t capacity);
  // Restricts recording: a record is kept when no filter is set, or when its
  // flow matches `flow_filter` (>= 0), or its node matches `node_filter`
  // (>= 0). Events that carry no flow (PFC, link state) pass the node filter.
  void SetFilters(int64_t flow_filter, NodeId node_filter);

  // Turns recording on/off; enabling installs the LCMP_CHECK failure hook
  // that dumps the ring to stderr before the process traps.
  void Enable(bool on);

  void Record(TraceEv ev, TimeNs ts, FlowId flow, NodeId node, PortIndex port, int64_t aux);

  // Oldest-first dump, one CSV row per record.
  void Dump(std::FILE* out) const;
  bool DumpToFile(const std::string& path) const;

  void Clear();

  // Records currently held (<= capacity).
  size_t size() const;
  size_t capacity() const;
  // All records accepted, including ones the ring has since overwritten.
  uint64_t total_recorded() const;
  // i-th held record, oldest first (test introspection).
  TraceRecord at(size_t i) const;

 private:
  FlightRecorder();

  TraceRecord AtLocked(size_t i) const;

  // The flight recorder is a process-wide singleton; under the parallel sweep
  // runner several simulator threads may trace at once, so ring mutation is
  // mutex-guarded. Tracing stays opt-in, so the lock is never taken on the
  // dormant path (LCMP_TRACE checks g_trace_enabled first).
  mutable std::mutex mu_;
  std::vector<TraceRecord> ring_;
  size_t head_ = 0;  // next write position
  size_t size_ = 0;
  uint64_t total_ = 0;
  int64_t flow_filter_ = -1;
  NodeId node_filter_ = kInvalidNode;
};

}  // namespace obs
}  // namespace lcmp

#if defined(LCMP_OBS_STRIP_TRACE)
#define LCMP_TRACE(ev, ts, flow, node, port, aux) \
  do {                                            \
  } while (0)
#else
// Single predictable branch when tracing is off; arguments are not evaluated
// unless the recorder is enabled.
#define LCMP_TRACE(ev, ts, flow, node, port, aux)                                        \
  do {                                                                                   \
    if (::lcmp::obs::TraceEnabled()) {                                                   \
      ::lcmp::obs::FlightRecorder::Instance().Record((ev), (ts), (flow), (node), (port), \
                                                     (aux));                             \
    }                                                                                    \
  } while (0)
#endif
