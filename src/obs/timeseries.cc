#include "obs/timeseries.h"

#include <cstdio>

#include "obs/metrics.h"

namespace lcmp {
namespace obs {

void TimeSeriesHub::Series::Sample(TimeNs t, double v) {
  if (!TimeSeriesHub::Instance().enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ring_[head_] = Point{t, v};
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  if (size_ < ring_.size()) {
    ++size_;
  }
}

bool TimeSeriesHub::Series::Last(TimeNs* t, double* v) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (size_ == 0) {
    return false;
  }
  const size_t last = (head_ + ring_.size() - 1) % ring_.size();
  *t = ring_[last].t;
  *v = ring_[last].v;
  return true;
}

std::vector<TimeSeriesHub::Point> TimeSeriesHub::Series::Points() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Point> out;
  out.reserve(size_);
  const size_t start = (head_ + ring_.size() - size_) % ring_.size();
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

TimeSeriesHub& TimeSeriesHub::Instance() {
  static TimeSeriesHub* hub = new TimeSeriesHub();  // never destroyed
  return *hub;
}

void TimeSeriesHub::Configure(size_t capacity_per_series) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity_per_series > 0 ? capacity_per_series : 1;
}

TimeSeriesHub::Series* TimeSeriesHub::GetSeries(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Series* s : series_) {
    if (s->name() == name) {
      return s;
    }
  }
  series_.push_back(new Series(name, capacity_));
  return series_.back();
}

std::string TimeSeriesHub::ToCsv() const {
  std::vector<Series*> all = AllSeries();
  std::string out = "time_ns,series,value\n";
  char buf[64];
  for (const Series* s : all) {
    const std::string name = CsvEscapeField(s->name());
    for (const Point& p : s->Points()) {
      std::snprintf(buf, sizeof(buf), "%lld,", static_cast<long long>(p.t));
      out += buf;
      out += name;
      std::snprintf(buf, sizeof(buf), ",%.6g\n", p.v);
      out += buf;
    }
  }
  return out;
}

bool TimeSeriesHub::WriteCsv(const std::string& path) const {
  const std::string body = ToCsv();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

std::vector<TimeSeriesHub::Series*> TimeSeriesHub::AllSeries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_;
}

void TimeSeriesHub::ResetValues() {
  std::vector<Series*> all = AllSeries();
  for (Series* s : all) {
    std::lock_guard<std::mutex> lock(s->mu_);
    s->head_ = 0;
    s->size_ = 0;
  }
}

size_t TimeSeriesHub::num_series() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

}  // namespace obs
}  // namespace lcmp
