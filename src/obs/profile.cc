#include "obs/profile.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

namespace lcmp {
namespace obs {

bool g_profile_enabled = false;

void SetProfileEnabled(bool on) { g_profile_enabled = on; }

namespace {
ProfileSite* g_sites = nullptr;  // singly-linked registration list
}

ProfileSite* RegisterProfileSite(const char* tag) {
  for (ProfileSite* s = g_sites; s != nullptr; s = s->next) {
    if (s->tag == tag || std::strcmp(s->tag, tag) == 0) {
      return s;
    }
  }
  auto* site = new ProfileSite();  // never destroyed
  site->tag = tag;
  site->next = g_sites;
  g_sites = site;
  return site;
}

uint64_t ProfileClockNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string ProfileReport() {
  std::vector<const ProfileSite*> sites;
  uint64_t total_ns = 0;
  for (const ProfileSite* s = g_sites; s != nullptr; s = s->next) {
    if (s->calls > 0) {
      sites.push_back(s);
      total_ns += s->wall_ns;
    }
  }
  std::sort(sites.begin(), sites.end(), [](const ProfileSite* a, const ProfileSite* b) {
    return a->wall_ns > b->wall_ns;
  });

  std::string out = "per-event-type profile (inclusive wall time):\n";
  char line[256];
  std::snprintf(line, sizeof(line), "  %-28s %12s %14s %10s %8s\n", "event type", "calls",
                "wall ms", "ns/call", "share");
  out += line;
  for (const ProfileSite* s : sites) {
    const double ms = static_cast<double>(s->wall_ns) / 1e6;
    const double per_call = static_cast<double>(s->wall_ns) / static_cast<double>(s->calls);
    const double share =
        total_ns > 0 ? 100.0 * static_cast<double>(s->wall_ns) / static_cast<double>(total_ns)
                     : 0.0;
    std::snprintf(line, sizeof(line), "  %-28s %12llu %14.3f %10.0f %7.1f%%\n", s->tag,
                  static_cast<unsigned long long>(s->calls), ms, per_call, share);
    out += line;
  }
  if (sites.empty()) {
    out += "  (no profiled events; run with profiling enabled)\n";
  }
  return out;
}

void ResetProfile() {
  for (ProfileSite* s = g_sites; s != nullptr; s = s->next) {
    s->calls = 0;
    s->wall_ns = 0;
  }
}

}  // namespace obs
}  // namespace lcmp
