#include "obs/profile.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <vector>

namespace lcmp {
namespace obs {

std::atomic<bool> g_profile_enabled{false};

void SetProfileEnabled(bool on) { g_profile_enabled.store(on, std::memory_order_relaxed); }

namespace {
std::mutex g_sites_mu;           // guards list mutation; readers see a stable prefix
ProfileSite* g_sites = nullptr;  // singly-linked registration list
}  // namespace

ProfileSite* RegisterProfileSite(const char* tag) {
  std::lock_guard<std::mutex> lock(g_sites_mu);
  for (ProfileSite* s = g_sites; s != nullptr; s = s->next) {
    if (s->tag == tag || std::strcmp(s->tag, tag) == 0) {
      return s;
    }
  }
  auto* site = new ProfileSite();  // never destroyed
  site->tag = tag;
  site->next = g_sites;
  g_sites = site;
  return site;
}

uint64_t ProfileClockNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string ProfileReport() {
  struct Row {
    const char* tag;
    uint64_t calls;
    uint64_t wall_ns;
  };
  std::vector<Row> rows;
  uint64_t total_ns = 0;
  {
    std::lock_guard<std::mutex> lock(g_sites_mu);
    for (const ProfileSite* s = g_sites; s != nullptr; s = s->next) {
      const uint64_t calls = s->calls.load(std::memory_order_relaxed);
      const uint64_t wall_ns = s->wall_ns.load(std::memory_order_relaxed);
      if (calls > 0) {
        rows.push_back({s->tag, calls, wall_ns});
        total_ns += wall_ns;
      }
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.wall_ns > b.wall_ns; });

  std::string out = "per-event-type profile (inclusive wall time):\n";
  char line[256];
  std::snprintf(line, sizeof(line), "  %-28s %12s %14s %10s %8s\n", "event type", "calls",
                "wall ms", "ns/call", "share");
  out += line;
  for (const Row& r : rows) {
    const double ms = static_cast<double>(r.wall_ns) / 1e6;
    const double per_call = static_cast<double>(r.wall_ns) / static_cast<double>(r.calls);
    const double share =
        total_ns > 0 ? 100.0 * static_cast<double>(r.wall_ns) / static_cast<double>(total_ns)
                     : 0.0;
    std::snprintf(line, sizeof(line), "  %-28s %12llu %14.3f %10.0f %7.1f%%\n", r.tag,
                  static_cast<unsigned long long>(r.calls), ms, per_call, share);
    out += line;
  }
  if (rows.empty()) {
    out += "  (no profiled events; run with profiling enabled)\n";
  }
  return out;
}

std::vector<ProfileSiteRow> ProfileSiteRows() {
  std::vector<ProfileSiteRow> rows;
  {
    std::lock_guard<std::mutex> lock(g_sites_mu);
    for (const ProfileSite* s = g_sites; s != nullptr; s = s->next) {
      const uint64_t calls = s->calls.load(std::memory_order_relaxed);
      if (calls > 0) {
        rows.push_back({s->tag, calls, s->wall_ns.load(std::memory_order_relaxed)});
      }
    }
  }
  std::sort(rows.begin(), rows.end(), [](const ProfileSiteRow& a, const ProfileSiteRow& b) {
    return a.wall_ns > b.wall_ns;
  });
  return rows;
}

void ResetProfile() {
  std::lock_guard<std::mutex> lock(g_sites_mu);
  for (ProfileSite* s = g_sites; s != nullptr; s = s->next) {
    s->calls.store(0, std::memory_order_relaxed);
    s->wall_ns.store(0, std::memory_order_relaxed);
  }
}

}  // namespace obs
}  // namespace lcmp
