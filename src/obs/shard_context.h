// Thread-local shard identity for the observability layer.
//
// PR 6 split the event core into per-DC shard simulators driven by worker
// threads. Observability sites (LCMP_TRACE, Counter::Add, Gauge::Set) run on
// whichever worker owns the emitting shard, so the obs layer needs to know —
// without taking a lock and without obs/ depending on sim/ headers — which
// *lane* the calling thread writes into and what the current simulation time
// and lineage key are, so records and gauge writes can be merged back into
// the one global order the sequential core would have produced.
//
// The contract mirrors common/logging.h's SetLogSimTimeSource: the simulator
// installs a context for the duration of Run()/RunWindow() pointing at its
// own `now_` and `current_key_` members (stable addresses), and restores the
// previous context on exit. Everything here is thread-local, so concurrent
// shard workers — and concurrent sweep-runner simulators — never interfere.
//
// Lanes: lane 0 is the unsharded/control lane (sequential runs, the global
// control-plane simulator, and any thread that never installed a context).
// Shard workers use lanes 1..kNumShardLanes-1, folded as 1 + shard % (N-1).
// Folding is safe for determinism: merge order relies only on the (time,
// lineage-key) stamp, which is globally unique per event, never on lane
// exclusivity. Two shards sharing a lane only costs some mutex contention.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace lcmp {
namespace obs {

// 1 control/unsharded lane + 16 shard lanes. Sized for the realistic shard
// counts (the engine runs one worker per DC shard, capped by cores).
inline constexpr int kNumShardLanes = 17;

// Lane for shard `shard` (>= 0). Shard counts above 16 fold.
constexpr int LaneForShard(int shard) { return 1 + shard % (kNumShardLanes - 1); }

struct ShardContext {
  int lane = 0;        // obs lane this thread writes into
  int shard = -1;      // shard id for record stamping; -1 = unsharded/control
  const TimeNs* sim_now = nullptr;     // owning simulator's clock, or null
  const uint64_t* event_key = nullptr; // owning simulator's current lineage key
};

namespace detail {
inline thread_local ShardContext g_shard_context;
}  // namespace detail

inline const ShardContext& CurrentShardContext() { return detail::g_shard_context; }

// Installs `ctx` for this thread and returns the previous context so callers
// can restore it (re-entrant: nested Run() calls compose).
inline ShardContext SetShardContext(const ShardContext& ctx) {
  const ShardContext prev = detail::g_shard_context;
  detail::g_shard_context = ctx;
  return prev;
}

// Current simulation time as seen by the emitting thread (0 when no context
// is installed, e.g. setup code before the first Run()).
inline TimeNs ContextNow() {
  const ShardContext& c = detail::g_shard_context;
  return c.sim_now != nullptr ? *c.sim_now : 0;
}

// Lineage key of the event being executed on this thread (0 outside events).
// (time, key) totally orders events across every shard layout, so stamping
// both onto obs records lets merge reproduce the sequential order exactly.
inline uint64_t ContextKey() {
  const ShardContext& c = detail::g_shard_context;
  return c.event_key != nullptr ? *c.event_key : 0;
}

class ScopedShardContext {
 public:
  explicit ScopedShardContext(const ShardContext& ctx) : prev_(SetShardContext(ctx)) {}
  ~ScopedShardContext() { SetShardContext(prev_); }

  ScopedShardContext(const ScopedShardContext&) = delete;
  ScopedShardContext& operator=(const ScopedShardContext&) = delete;

 private:
  ShardContext prev_;
};

}  // namespace obs
}  // namespace lcmp
