// Time-series telemetry hub: named bounded-ring samplers riding the control
// plane's telemetry sweep (DESIGN.md §7).
//
// MetricsRegistry snapshots answer "what are the totals now"; the hub
// answers "how did it move" — link utilization, queue depth, per-CC rate,
// path weights — sampled once per telemetry period and kept in per-series
// rings so a multi-second run costs bounded memory. Series become Perfetto
// counter tracks in the `--trace-out=*.json` export and rows in the
// `--timeseries-out` CSV.
//
// Sampling runs on the control-plane simulator's thread (sequential runs) or
// the barrier coordinator (sharded runs) — one thread either way — but
// handles can be resolved from anywhere, so registration and sample appends
// are mutex-guarded. Like the metrics registry, the hub never schedules
// events or touches simulation state: enabling it changes what is recorded,
// never what the simulation does.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace lcmp {
namespace obs {

class TimeSeriesHub {
 public:
  struct Point {
    TimeNs t = 0;
    double v = 0;
  };

  // One named series: a FIFO ring of (sim-time, value) points. Handles are
  // stable for the process lifetime (same never-freed scheme as metric
  // cells); Sample() is a no-op while the hub is disabled.
  class Series {
   public:
    void Sample(TimeNs t, double v);
    // Most recent point, if any — samplers use it to turn monotonic byte
    // counters into per-period rates.
    bool Last(TimeNs* t, double* v) const;
    std::vector<Point> Points() const;
    const std::string& name() const { return name_; }

   private:
    friend class TimeSeriesHub;
    explicit Series(std::string name, size_t capacity) : name_(std::move(name)) {
      ring_.resize(capacity);
    }

    const std::string name_;
    mutable std::mutex mu_;
    std::vector<Point> ring_;
    size_t head_ = 0;
    size_t size_ = 0;
  };

  static TimeSeriesHub& Instance();

  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Ring depth for series created after the call (default 4096 points).
  void Configure(size_t capacity_per_series);

  // Resolve a series by name, creating it on first use.
  Series* GetSeries(const std::string& name);

  // `time_ns,series,value` rows, series names CSV-escaped, points in time
  // order within each series, series in registration order.
  std::string ToCsv() const;
  bool WriteCsv(const std::string& path) const;

  // All series with their points, registration order (trace export input).
  std::vector<Series*> AllSeries() const;

  // Drops every series' points; handles stay valid. Test isolation hook.
  void ResetValues();

  size_t num_series() const;

 private:
  TimeSeriesHub() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  size_t capacity_ = 4096;
  std::vector<Series*> series_;  // never freed, like metric cells
};

}  // namespace obs
}  // namespace lcmp
