// Per-event-type profiling hooks: wall-time and call-count attribution by
// callsite tag, reported as a table at end of run.
//
// Usage: put LCMP_PROFILE_SCOPE("transport.ack") at the top of an event
// handler. The macro registers the callsite once (function-local static) and
// then each execution costs a single predictable branch when profiling is
// off, or two steady_clock reads when it is on. Sites nest freely; times are
// inclusive, so the report answers "where does simulation time go" per event
// type rather than summing to exactly 100%.
//
// Profiling reads the host clock only — it never touches simulation state,
// so enabling it cannot perturb event counts or FCT results.
//
// Thread model: the parallel sweep runner executes many simulators at once.
// Site registration is mutex-guarded (it happens once per callsite via a
// function-local static), and per-site counters are relaxed atomics so
// concurrently profiled runs merge their samples without tearing.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace lcmp {
namespace obs {

extern std::atomic<bool> g_profile_enabled;
inline bool ProfileEnabled() {
  return __builtin_expect(g_profile_enabled.load(std::memory_order_relaxed), 0);
}
void SetProfileEnabled(bool on);

// One registered callsite. Lives forever; linked into a global list.
struct ProfileSite {
  const char* tag = nullptr;
  std::atomic<uint64_t> calls{0};
  std::atomic<uint64_t> wall_ns{0};
  ProfileSite* next = nullptr;
};

// Registers (or re-finds, by tag pointer identity) a callsite.
ProfileSite* RegisterProfileSite(const char* tag);

// Monotonic host-clock nanoseconds.
uint64_t ProfileClockNs();

class ScopedProfile {
 public:
  explicit ScopedProfile(ProfileSite* site) {
    if (ProfileEnabled()) {
      site_ = site;
      start_ns_ = ProfileClockNs();
    }
  }
  ~ScopedProfile() {
    if (site_ != nullptr) {
      site_->wall_ns.fetch_add(ProfileClockNs() - start_ns_, std::memory_order_relaxed);
      site_->calls.fetch_add(1, std::memory_order_relaxed);
    }
  }

  ScopedProfile(const ScopedProfile&) = delete;
  ScopedProfile& operator=(const ScopedProfile&) = delete;

 private:
  ProfileSite* site_ = nullptr;
  uint64_t start_ns_ = 0;
};

// Formats all sites sorted by wall time (descending) as an aligned table.
std::string ProfileReport();

// Raw per-site totals for sites with at least one call, sorted by wall time
// descending (trace-export input).
struct ProfileSiteRow {
  const char* tag = nullptr;
  uint64_t calls = 0;
  uint64_t wall_ns = 0;
};
std::vector<ProfileSiteRow> ProfileSiteRows();

// Zeroes every site's counters (sites themselves persist). Test hook.
void ResetProfile();

}  // namespace obs
}  // namespace lcmp

// Two-level expansion so __LINE__ stamps unique identifiers.
#define LCMP_PROFILE_CONCAT2(a, b) a##b
#define LCMP_PROFILE_CONCAT(a, b) LCMP_PROFILE_CONCAT2(a, b)
#define LCMP_PROFILE_SCOPE(tag)                                      \
  static ::lcmp::obs::ProfileSite* LCMP_PROFILE_CONCAT(lcmp_ps_, __LINE__) = \
      ::lcmp::obs::RegisterProfileSite(tag);                         \
  ::lcmp::obs::ScopedProfile LCMP_PROFILE_CONCAT(lcmp_psc_, __LINE__)(       \
      LCMP_PROFILE_CONCAT(lcmp_ps_, __LINE__))
