// Chrome-trace / Perfetto (`trace_event` JSON) export of an LCMP run
// (DESIGN.md §7).
//
// `--trace-out=<file>.json` turns one run into a timeline that opens
// directly in ui.perfetto.dev / chrome://tracing, with two "process" rows:
//
//   pid 1 "simulation (sim time)" — timestamps are simulation nanoseconds
//     (emitted as microseconds, the trace_event unit):
//       tid 0        control/unsharded instants + every counter track
//       tid 1+shard  that shard's instants and its barrier-window spans
//     Instants come from the flight recorder's merged (ts, lineage-key)
//     stream: drops, ECN marks, PFC pause/resume, route decisions, CC rate
//     changes, link/fault transitions, failovers. Enqueue/dequeue records
//     are deliberately skipped — they dominate the ring but say nothing at
//     timeline zoom. Counter tracks are the TimeSeriesHub series
//     (lcmp.link.<name>.util_pct, lcmp.queue.*, lcmp.cc.*, ...).
//
//   pid 2 "pdes engine (wall time)" — timestamps are host nanoseconds from
//     the profiler clock, normalized to the first barrier window:
//       tid 0        coordinator completion-step phases per window
//                    (drain -> advance -> control, laid back to back)
//       tid 1+shard  each worker's RunWindow execution span per window
//       tid 99       whole-run per-event-type profile totals, head to tail
//     plus channel-pressure counter tracks (items drained per window,
//     occupancy high-water).
//
// The writer only reads obs singletons (FlightRecorder, TimeSeriesHub,
// BarrierProfiler, profile sites); it is called once, after the run, from
// FinalizeObs.
#pragma once

#include <string>

#include "common/types.h"

namespace lcmp {
namespace obs {

// Writes the full trace_event JSON document to `path`. `sim_end_ns` stamps
// the metadata; returns false on I/O failure.
bool WriteChromeTrace(const std::string& path, TimeNs sim_end_ns);

}  // namespace obs
}  // namespace lcmp
