#include "obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "obs/profile.h"
#include "obs/shard_profile.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace lcmp {
namespace obs {
namespace {

constexpr int kSimPid = 1;     // sim-time domain
constexpr int kEnginePid = 2;  // wall-time domain
constexpr int kProfileTid = 99;

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// trace_event timestamps are microseconds; keep sub-ns precision as decimals.
std::string Us(double ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", ns / 1000.0);
  return buf;
}

class EventList {
 public:
  void Meta(int pid, int tid, const char* what, const std::string& name) {
    std::string e = R"({"ph":"M","pid":)" + std::to_string(pid);
    if (tid >= 0) {
      e += ",\"tid\":" + std::to_string(tid);
    }
    e += std::string(",\"name\":\"") + what + R"(","args":{"name":")" + JsonEscape(name) +
         "\"}}";
    events_.push_back(std::move(e));
  }

  void Instant(int pid, int tid, double ts_ns, const char* name, const char* cat,
               const std::string& args) {
    events_.push_back(R"({"ph":"i","s":"t","pid":)" + std::to_string(pid) +
                      ",\"tid\":" + std::to_string(tid) + ",\"ts\":" + Us(ts_ns) +
                      ",\"name\":\"" + name + "\",\"cat\":\"" + cat + "\",\"args\":{" + args +
                      "}}");
  }

  void Span(int pid, int tid, double ts_ns, double dur_ns, const std::string& name,
            const char* cat, const std::string& args) {
    events_.push_back(R"({"ph":"X","pid":)" + std::to_string(pid) +
                      ",\"tid\":" + std::to_string(tid) + ",\"ts\":" + Us(ts_ns) +
                      ",\"dur\":" + Us(dur_ns) + ",\"name\":\"" + JsonEscape(name) +
                      "\",\"cat\":\"" + cat + "\",\"args\":{" + args + "}}");
  }

  void Counter(int pid, double ts_ns, const std::string& name, double value) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    events_.push_back(R"({"ph":"C","pid":)" + std::to_string(pid) +
                      ",\"tid\":0,\"ts\":" + Us(ts_ns) + ",\"name\":\"" + JsonEscape(name) +
                      "\",\"args\":{\"value\":" + buf + "}}");
  }

  std::string Render(TimeNs sim_end_ns) const {
    std::string out = "{\"traceEvents\":[\n";
    for (size_t i = 0; i < events_.size(); ++i) {
      out += events_[i];
      out += i + 1 < events_.size() ? ",\n" : "\n";
    }
    out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"sim_end_ns\":" +
           std::to_string(sim_end_ns) + "}}\n";
    return out;
  }

 private:
  std::vector<std::string> events_;
};

const char* InstantCat(TraceEv ev) {
  switch (ev) {
    case TraceEv::kDrop:
    case TraceEv::kEcnMark:
      return "queue";
    case TraceEv::kPfcPause:
    case TraceEv::kPfcResume:
      return "pfc";
    case TraceEv::kRouteDecision:
    case TraceEv::kFailover:
      return "route";
    case TraceEv::kCcRateChange:
      return "cc";
    case TraceEv::kLinkDown:
    case TraceEv::kLinkUp:
    case TraceEv::kLinkDegraded:
    case TraceEv::kLinkRestored:
      return "fault";
    default:
      return "flight";
  }
}

}  // namespace

bool WriteChromeTrace(const std::string& path, TimeNs sim_end_ns) {
  EventList ev;
  ev.Meta(kSimPid, -1, "process_name", "simulation (sim time)");
  ev.Meta(kEnginePid, -1, "process_name", "pdes engine (wall time)");
  ev.Meta(kSimPid, 0, "thread_name", "control");

  // --- pid 1: flight-recorder instants in merged (ts, key) order ---
  std::vector<int> sim_tids_named;
  auto name_shard_tid = [&](int shard) {
    const int tid = shard < 0 ? 0 : 1 + shard;
    if (tid > 0 &&
        std::find(sim_tids_named.begin(), sim_tids_named.end(), tid) == sim_tids_named.end()) {
      sim_tids_named.push_back(tid);
      ev.Meta(kSimPid, tid, "thread_name", "shard " + std::to_string(shard));
    }
    return tid;
  };
  for (const TraceRecord& r : FlightRecorder::Instance().MergedRecords()) {
    if (r.ev == TraceEv::kEnqueue || r.ev == TraceEv::kDequeue) {
      continue;  // too dense to render; the CSV dump keeps them
    }
    const int tid = name_shard_tid(r.shard);
    std::string args = "\"flow\":" + std::to_string(r.flow) +
                       ",\"node\":" + std::to_string(r.node) +
                       ",\"port\":" + std::to_string(r.port) +
                       ",\"aux\":" + std::to_string(r.aux);
    ev.Instant(kSimPid, tid, static_cast<double>(r.ts), TraceEvName(r.ev), InstantCat(r.ev),
               args);
  }

  // --- pid 1: time-series counter tracks ---
  for (const TimeSeriesHub::Series* s : TimeSeriesHub::Instance().AllSeries()) {
    for (const TimeSeriesHub::Point& p : s->Points()) {
      ev.Counter(kSimPid, static_cast<double>(p.t), s->name(), p.v);
    }
  }

  // --- barrier windows: sim-time spans (pid 1) + wall-time engine (pid 2) ---
  const std::vector<BarrierProfiler::WindowRecord> windows = BarrierProfiler::Instance().Windows();
  if (!windows.empty()) {
    uint64_t wall_base = std::numeric_limits<uint64_t>::max();
    for (const auto& w : windows) {
      if (w.coord_wall_start_ns > 0) {
        wall_base = std::min(wall_base, w.coord_wall_start_ns);
      }
      for (const auto& s : w.shards) {
        if (s.recorded && s.wall_start_ns > 0) {
          wall_base = std::min(wall_base, s.wall_start_ns);
        }
      }
    }
    if (wall_base == std::numeric_limits<uint64_t>::max()) {
      wall_base = 0;
    }
    ev.Meta(kEnginePid, 0, "thread_name", "coordinator");
    std::vector<int> engine_tids_named;
    for (const auto& w : windows) {
      const double coord_ts = static_cast<double>(w.coord_wall_start_ns - wall_base);
      ev.Span(kEnginePid, 0, coord_ts, static_cast<double>(w.drain_ns), "drain", "coordinate",
              "\"items\":" + std::to_string(w.drained_items));
      ev.Span(kEnginePid, 0, coord_ts + static_cast<double>(w.drain_ns),
              static_cast<double>(w.advance_ns), "advance", "coordinate", "");
      ev.Span(kEnginePid, 0, coord_ts + static_cast<double>(w.drain_ns + w.advance_ns),
              static_cast<double>(w.control_ns), "control", "coordinate", "");
      ev.Counter(kEnginePid, coord_ts, "pdes.channel.drained",
                 static_cast<double>(w.drained_items));
      ev.Counter(kEnginePid, coord_ts, "pdes.channel.high_water",
                 static_cast<double>(w.channel_high_water));
      for (size_t i = 0; i < w.shards.size(); ++i) {
        const BarrierProfiler::ShardSlot& s = w.shards[i];
        if (!s.recorded) {
          continue;
        }
        const int shard = static_cast<int>(i);
        const int sim_tid = name_shard_tid(shard);
        const int engine_tid = 1 + shard;
        if (std::find(engine_tids_named.begin(), engine_tids_named.end(), engine_tid) ==
            engine_tids_named.end()) {
          engine_tids_named.push_back(engine_tid);
          ev.Meta(kEnginePid, engine_tid, "thread_name", "shard " + std::to_string(shard));
        }
        ev.Span(kSimPid, sim_tid, static_cast<double>(w.t_start),
                static_cast<double>(w.t_end - w.t_start), "window", "barrier",
                "\"events\":" + std::to_string(s.events) +
                    ",\"busy_ns\":" + std::to_string(s.busy_ns));
        ev.Span(kEnginePid, engine_tid, static_cast<double>(s.wall_start_ns - wall_base),
                static_cast<double>(s.busy_ns), "run", "window",
                "\"events\":" + std::to_string(s.events));
      }
    }
  }

  // --- pid 2 tid 99: whole-run per-event-type totals, head to tail ---
  const std::vector<ProfileSiteRow> sites = ProfileSiteRows();
  if (!sites.empty()) {
    ev.Meta(kEnginePid, kProfileTid, "thread_name", "profile totals");
    double cursor = 0;
    for (const ProfileSiteRow& row : sites) {
      ev.Span(kEnginePid, kProfileTid, cursor, static_cast<double>(row.wall_ns), row.tag,
              "profile", "\"calls\":" + std::to_string(row.calls));
      cursor += static_cast<double>(row.wall_ns);
    }
  }

  const std::string body = ev.Render(sim_end_ns);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

}  // namespace obs
}  // namespace lcmp
