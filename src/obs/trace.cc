#include "obs/trace.h"

#include "common/logging.h"

namespace lcmp {
namespace obs {

std::atomic<bool> g_trace_enabled{false};

namespace {
constexpr size_t kDefaultCapacity = 65536;

void DumpOnCheckFailure() {
  std::fprintf(stderr, "--- flight recorder (last %zu events) ---\n",
               FlightRecorder::Instance().size());
  FlightRecorder::Instance().Dump(stderr);
  std::fflush(stderr);
}
}  // namespace

const char* TraceEvName(TraceEv ev) {
  switch (ev) {
    case TraceEv::kEnqueue:
      return "enqueue";
    case TraceEv::kDequeue:
      return "dequeue";
    case TraceEv::kDrop:
      return "drop";
    case TraceEv::kEcnMark:
      return "ecn_mark";
    case TraceEv::kPfcPause:
      return "pfc_pause";
    case TraceEv::kPfcResume:
      return "pfc_resume";
    case TraceEv::kRouteDecision:
      return "route_decision";
    case TraceEv::kCcRateChange:
      return "cc_rate_change";
    case TraceEv::kLinkDown:
      return "link_down";
    case TraceEv::kLinkUp:
      return "link_up";
    case TraceEv::kLinkDegraded:
      return "link_degraded";
    case TraceEv::kLinkRestored:
      return "link_restored";
  }
  return "?";
}

FlightRecorder::FlightRecorder() { ring_.resize(kDefaultCapacity); }

FlightRecorder& FlightRecorder::Instance() {
  static FlightRecorder* recorder = new FlightRecorder();  // never destroyed
  return *recorder;
}

void FlightRecorder::Configure(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.assign(capacity > 0 ? capacity : 1, TraceRecord{});
  head_ = 0;
  size_ = 0;
  total_ = 0;
}

void FlightRecorder::SetFilters(int64_t flow_filter, NodeId node_filter) {
  std::lock_guard<std::mutex> lock(mu_);
  flow_filter_ = flow_filter;
  node_filter_ = node_filter;
}

void FlightRecorder::Enable(bool on) {
  g_trace_enabled.store(on, std::memory_order_relaxed);
  if (on) {
    SetCheckFailureHook(&DumpOnCheckFailure);
  }
}

void FlightRecorder::Record(TraceEv ev, TimeNs ts, FlowId flow, NodeId node, PortIndex port,
                            int64_t aux) {
  std::lock_guard<std::mutex> lock(mu_);
  if (flow_filter_ >= 0 || node_filter_ != kInvalidNode) {
    const bool flow_ok = flow_filter_ >= 0 && static_cast<int64_t>(flow) == flow_filter_;
    const bool node_ok = node_filter_ != kInvalidNode && node == node_filter_;
    if (!flow_ok && !node_ok) {
      return;
    }
  }
  TraceRecord& r = ring_[head_];
  r.ts = ts;
  r.flow = flow;
  r.aux = aux;
  r.node = node;
  r.port = static_cast<int16_t>(port);
  r.ev = ev;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  if (size_ < ring_.size()) {
    ++size_;
  }
  ++total_;
}

size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

size_t FlightRecorder::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

TraceRecord FlightRecorder::AtLocked(size_t i) const {
  const size_t start = (head_ + ring_.size() - size_) % ring_.size();
  return ring_[(start + i) % ring_.size()];
}

TraceRecord FlightRecorder::at(size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  return AtLocked(i);
}

void FlightRecorder::Dump(std::FILE* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(out, "time_ns,event,flow,node,port,aux\n");
  for (size_t i = 0; i < size_; ++i) {
    const TraceRecord r = AtLocked(i);
    std::fprintf(out, "%lld,%s,%llu,%d,%d,%lld\n", static_cast<long long>(r.ts),
                 TraceEvName(r.ev), static_cast<unsigned long long>(r.flow), r.node, r.port,
                 static_cast<long long>(r.aux));
  }
}

bool FlightRecorder::DumpToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  Dump(f);
  std::fclose(f);
  return true;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  head_ = 0;
  size_ = 0;
  total_ = 0;
}

}  // namespace obs
}  // namespace lcmp
