#include "obs/trace.h"

#include <algorithm>

#include "common/logging.h"

namespace lcmp {
namespace obs {

std::atomic<bool> g_trace_enabled{false};

namespace {
constexpr size_t kDefaultCapacity = 65536;

void DumpOnCheckFailure() {
  std::fprintf(stderr, "--- flight recorder (last %zu events) ---\n",
               FlightRecorder::Instance().size());
  FlightRecorder::Instance().Dump(stderr);
  std::fflush(stderr);
}
}  // namespace

const char* TraceEvName(TraceEv ev) {
  switch (ev) {
    case TraceEv::kEnqueue:
      return "enqueue";
    case TraceEv::kDequeue:
      return "dequeue";
    case TraceEv::kDrop:
      return "drop";
    case TraceEv::kEcnMark:
      return "ecn_mark";
    case TraceEv::kPfcPause:
      return "pfc_pause";
    case TraceEv::kPfcResume:
      return "pfc_resume";
    case TraceEv::kRouteDecision:
      return "route_decision";
    case TraceEv::kCcRateChange:
      return "cc_rate_change";
    case TraceEv::kLinkDown:
      return "link_down";
    case TraceEv::kLinkUp:
      return "link_up";
    case TraceEv::kLinkDegraded:
      return "link_degraded";
    case TraceEv::kLinkRestored:
      return "link_restored";
    case TraceEv::kFailover:
      return "failover";
  }
  return "?";
}

FlightRecorder::FlightRecorder() : capacity_(kDefaultCapacity) {}

FlightRecorder& FlightRecorder::Instance() {
  static FlightRecorder* recorder = new FlightRecorder();  // never destroyed
  return *recorder;
}

FlightRecorder::Lane& FlightRecorder::LaneAt(int i) {
  Lane* lane = lanes_[i].load(std::memory_order_acquire);
  if (__builtin_expect(lane != nullptr, 1)) {
    return *lane;
  }
  std::lock_guard<std::mutex> lock(create_mu_);
  lane = lanes_[i].load(std::memory_order_relaxed);
  if (lane == nullptr) {
    lane = new Lane();  // never destroyed (singleton-owned)
    lane->ring.resize(capacity_.load(std::memory_order_relaxed));
    lanes_[i].store(lane, std::memory_order_release);
  }
  return *lane;
}

void FlightRecorder::Configure(size_t capacity) {
  std::lock_guard<std::mutex> lock(create_mu_);
  capacity_.store(capacity > 0 ? capacity : 1, std::memory_order_relaxed);
  for (auto& slot : lanes_) {
    Lane* lane = slot.load(std::memory_order_relaxed);
    if (lane == nullptr) {
      continue;
    }
    std::lock_guard<std::mutex> lane_lock(lane->mu);
    lane->ring.assign(capacity_.load(std::memory_order_relaxed), TraceRecord{});
    lane->head = 0;
    lane->size = 0;
    lane->total = 0;
  }
}

void FlightRecorder::SetFilters(int64_t flow_filter, NodeId node_filter) {
  flow_filter_.store(flow_filter, std::memory_order_relaxed);
  node_filter_.store(node_filter, std::memory_order_relaxed);
}

void FlightRecorder::Enable(bool on) {
  g_trace_enabled.store(on, std::memory_order_relaxed);
  if (on) {
    SetCheckFailureHook(&DumpOnCheckFailure);
  }
}

void FlightRecorder::Record(TraceEv ev, TimeNs ts, FlowId flow, NodeId node, PortIndex port,
                            int64_t aux) {
  const int64_t flow_filter = flow_filter_.load(std::memory_order_relaxed);
  const NodeId node_filter = node_filter_.load(std::memory_order_relaxed);
  if (flow_filter >= 0 || node_filter != kInvalidNode) {
    const bool flow_ok = flow_filter >= 0 && static_cast<int64_t>(flow) == flow_filter;
    const bool node_ok = node_filter != kInvalidNode && node == node_filter;
    if (!flow_ok && !node_ok) {
      return;
    }
  }
  const ShardContext& ctx = CurrentShardContext();
  Lane& lane = LaneAt(ctx.lane);
  std::lock_guard<std::mutex> lock(lane.mu);
  TraceRecord& r = lane.ring[lane.head];
  r.ts = ts;
  r.flow = flow;
  r.aux = aux;
  r.key = ContextKey();
  r.node = node;
  r.port = static_cast<int16_t>(port);
  r.ev = ev;
  r.shard = static_cast<int8_t>(ctx.shard);
  lane.head = lane.head + 1 == lane.ring.size() ? 0 : lane.head + 1;
  if (lane.size < lane.ring.size()) {
    ++lane.size;
  }
  ++lane.total;
}

size_t FlightRecorder::size() const {
  size_t n = 0;
  for (int i = 0; i < kNumShardLanes; ++i) {
    const Lane* lane = LanePtr(i);
    if (lane == nullptr) {
      continue;
    }
    std::lock_guard<std::mutex> lock(lane->mu);
    n += lane->size;
  }
  return n;
}

size_t FlightRecorder::capacity() const { return capacity_.load(std::memory_order_relaxed); }

uint64_t FlightRecorder::total_recorded() const {
  uint64_t n = 0;
  for (int i = 0; i < kNumShardLanes; ++i) {
    const Lane* lane = LanePtr(i);
    if (lane == nullptr) {
      continue;
    }
    std::lock_guard<std::mutex> lock(lane->mu);
    n += lane->total;
  }
  return n;
}

std::vector<TraceRecord> FlightRecorder::MergedRecords() const {
  std::vector<TraceRecord> merged;
  // Concatenate lanes oldest-first in lane order, then stable-sort by
  // (ts, key). Each event's records were emitted in sequence on one thread
  // into one lane, so lane-local order is the per-event emission order and
  // the stable sort preserves it; across events the (ts, key) stamp is the
  // global execution order, identical in every shard layout. Records minted
  // outside any event (key 0) tie-break by lane index — also deterministic,
  // since lane assignment is a pure function of the shard plan.
  for (int i = 0; i < kNumShardLanes; ++i) {
    const Lane* lane = LanePtr(i);
    if (lane == nullptr) {
      continue;
    }
    std::lock_guard<std::mutex> lock(lane->mu);
    const size_t cap = lane->ring.size();
    const size_t start = (lane->head + cap - lane->size) % cap;
    for (size_t j = 0; j < lane->size; ++j) {
      merged.push_back(lane->ring[(start + j) % cap]);
    }
  }
  std::stable_sort(merged.begin(), merged.end(), [](const TraceRecord& a, const TraceRecord& b) {
    return a.ts < b.ts || (a.ts == b.ts && a.key < b.key);
  });
  return merged;
}

TraceRecord FlightRecorder::at(size_t i) const {
  const std::vector<TraceRecord> merged = MergedRecords();
  return i < merged.size() ? merged[i] : TraceRecord{};
}

void FlightRecorder::Dump(std::FILE* out) const {
  const std::vector<TraceRecord> merged = MergedRecords();
  std::fprintf(out, "time_ns,event,flow,node,port,aux,shard,key\n");
  for (const TraceRecord& r : merged) {
    std::fprintf(out, "%lld,%s,%llu,%d,%d,%lld,%d,%llu\n", static_cast<long long>(r.ts),
                 TraceEvName(r.ev), static_cast<unsigned long long>(r.flow), r.node, r.port,
                 static_cast<long long>(r.aux), r.shard,
                 static_cast<unsigned long long>(r.key));
  }
}

bool FlightRecorder::DumpToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  Dump(f);
  std::fclose(f);
  return true;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(create_mu_);
  for (auto& slot : lanes_) {
    Lane* lane = slot.load(std::memory_order_relaxed);
    if (lane == nullptr) {
      continue;
    }
    std::lock_guard<std::mutex> lane_lock(lane->mu);
    lane->head = 0;
    lane->size = 0;
    lane->total = 0;
  }
}

}  // namespace obs
}  // namespace lcmp
