#include "core/lcmp_router.h"

#include <algorithm>

#include "common/logging.h"
#include "core/path_quality.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace lcmp {

LcmpRouter::LcmpRouter(SwitchNode& sw, const LcmpConfig& config,
                       std::shared_ptr<const BootstrapTables> tables)
    : config_(config),
      tables_(std::move(tables)),
      estimator_(config, tables_.get(), sw.num_ports()),
      flow_cache_(config.flow_cache_capacity, config.flow_idle_timeout) {
  LCMP_CHECK(tables_ != nullptr);
  layout_dcs_ = std::max(sw.NumDcs(), 1);
  layout_layers_ = std::max(sw.num_path_layers(), 1);
  cpath_tables_.resize(static_cast<size_t>(layout_dcs_) * static_cast<size_t>(layout_layers_));
}

size_t LcmpRouter::CpathSlot(DcId dst_dc, int layer) {
  LCMP_CHECK(dst_dc >= 0 && layer >= 0);
  if (dst_dc >= layout_dcs_) {
    // Only safe while single-layer (row stride changes otherwise); multi-layer
    // layouts are fixed at construction from the switch's path table.
    LCMP_CHECK(layout_layers_ == 1);
    layout_dcs_ = dst_dc + 1;
  }
  if (layer >= layout_layers_) {
    layout_layers_ = layer + 1;  // appends rows; existing indices unchanged
  }
  const size_t slot = static_cast<size_t>(layer) * static_cast<size_t>(layout_dcs_) +
                      static_cast<size_t>(dst_dc);
  if (slot >= cpath_tables_.size()) {
    cpath_tables_.resize(static_cast<size_t>(layout_dcs_) *
                         static_cast<size_t>(layout_layers_));
  }
  return slot;
}

void LcmpRouter::InstallPathTable(DcId dst_dc, std::vector<uint8_t> cpath_scores) {
  InstallPathTable(dst_dc, /*layer=*/0, std::move(cpath_scores));
}

void LcmpRouter::InstallPathTable(DcId dst_dc, int layer, std::vector<uint8_t> cpath_scores) {
  cpath_tables_[CpathSlot(dst_dc, layer)] = std::move(cpath_scores);
}

const std::vector<uint8_t>& LcmpRouter::PathTableFor(SwitchNode& sw, DcId dst_dc, int layer,
                                                     std::span<const PathCandidate> candidates) {
  std::vector<uint8_t>& table = cpath_tables_[CpathSlot(dst_dc, layer)];
  if (table.size() != candidates.size()) {
    // On-demand table creation from the candidates' control-plane attributes
    // (normally ControlPlane::Provision pre-installs this).
    table.resize(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      table[i] = CalcPathQuality(candidates[i].path_delay_ns, candidates[i].bottleneck_bps,
                                 config_, *tables_);
    }
    (void)sw;
  }
  return table;
}

void LcmpRouter::RefreshCongestion(SwitchNode& sw, std::span<const PathCandidate> candidates) {
  const TimeNs now = sw.sim().now();
  for (const PathCandidate& c : candidates) {
    if (estimator_.NeedsRefresh(c.port, now)) {
      const Port& port = sw.port(c.port);
      estimator_.Sample(c.port, port.queue_bytes(), port.rate_bps(), now);
    }
  }
}

PortIndex LcmpRouter::DecideNewFlow(SwitchNode& sw, const Packet& pkt,
                                    std::span<const PathCandidate> candidates) {
  LCMP_PROFILE_SCOPE("lcmp.decide_new_flow");
  // (1) refresh congestion state of stale candidate ports.
  RefreshCongestion(sw, candidates);
  const DcId dst_dc = sw.DstDcOf(pkt);
  const std::vector<uint8_t>& cpath =
      PathTableFor(sw, dst_dc, sw.current_path_layer(), candidates);

  // (2)+(3) per-candidate scores and fused cost, live ports only.
  scored_.clear();
  for (size_t i = 0; i < candidates.size(); ++i) {
    const PathCandidate& c = candidates[i];
    if (!sw.port(c.port).up()) {
      continue;
    }
    const uint8_t cong = estimator_.CongScore(c.port, sw.port(c.port).rate_bps());
    ScoredCandidate s;
    s.port = c.port;
    s.cong_score = cong;
    s.fused_cost = config_.alpha * static_cast<int32_t>(cpath[i]) +
                   config_.beta * static_cast<int32_t>(cong);
    scored_.push_back(s);
  }
  if (scored_.empty()) {
    return kInvalidPort;
  }
  // (4) filter + diversity-preserving hash.
  const uint64_t h = HashFlowKey(pkt.key, 0x1c3fULL ^ static_cast<uint64_t>(sw.id()));
  const SelectionResult sel = SelectDiverse(scored_, h, config_, scratch_);
  ++stats_.new_flow_decisions;
  if (sel.used_fallback) {
    ++stats_.fallback_decisions;
  }
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
    static obs::Counter* m_decisions = reg.GetCounter("lcmp.router.new_flow_decisions");
    static obs::Counter* m_fallbacks = reg.GetCounter("lcmp.router.fallback_decisions");
    static const std::vector<int64_t> kCostBounds = {0,   32,  64,  96,   128,  192,
                                                     256, 384, 512, 1024, 2048, 4096};
    static obs::Histogram* h_fused = reg.GetHistogram("lcmp.fused_cost", kCostBounds);
    static const std::vector<int64_t> kScoreBounds = {0, 16, 32, 64, 96, 128, 160, 192, 224};
    static obs::Histogram* h_cpath = reg.GetHistogram("lcmp.cpath_score", kScoreBounds);
    m_decisions->Inc();
    if (sel.used_fallback) {
      m_fallbacks->Inc();
    }
    for (const ScoredCandidate& s : scored_) {
      h_fused->AddAlways(s.fused_cost);
    }
    for (size_t i = 0; i < candidates.size(); ++i) {
      h_cpath->AddAlways(cpath[i]);
    }
  }
  LCMP_TRACE(obs::TraceEv::kRouteDecision, sw.sim().now(), RoutingFlowId(pkt.key), sw.id(),
             sel.port, /*aux=*/static_cast<int64_t>(scored_.size()));
  // (5) record the mapping for path consistency.
  if (sel.port != kInvalidPort) {
    flow_cache_.Insert(RoutingFlowId(pkt.key), sel.port, sw.sim().now());
  }
  return sel.port;
}

PortIndex LcmpRouter::SelectPort(SwitchNode& sw, const Packet& pkt,
                                 std::span<const PathCandidate> candidates) {
  LCMP_PROFILE_SCOPE("lcmp.select_port");
  ++stats_.packets;
  const TimeNs now = sw.sim().now();
  const FlowId fid = RoutingFlowId(pkt.key);
  const PortIndex cached = flow_cache_.Lookup(fid, now);
  if (cached != kInvalidPort) {
    if (sw.port(cached).up() || config_.disable_failover) {
      ++stats_.cache_hits;
      return cached;
    }
    // Data-plane fast failover: lazily invalidate the dead mapping and
    // treat this packet as the flow's first (Sec. 3.4).
    flow_cache_.Invalidate(fid);
    ++stats_.failover_rehashes;
    // aux = the invalidated (dead) port; the rehash's new pick follows as
    // this packet's kRouteDecision. Perfetto renders these as the failover
    // instants that make the paper's ~10 ms recovery visible on a timeline.
    LCMP_TRACE(obs::TraceEv::kFailover, now, fid, sw.id(), cached, /*aux=*/cached);
    static obs::Counter* m_rehash =
        obs::MetricsRegistry::Instance().GetCounter("lcmp.router.failover_rehashes");
    m_rehash->Inc();
  }
  return DecideNewFlow(sw, pkt, candidates);
}

void LcmpRouter::OnTick(SwitchNode& sw) {
  LCMP_PROFILE_SCOPE("lcmp.monitor_tick");
  ++ticks_;
  // Background monitor: sample every inter-DC egress so T/D evolve even when
  // no new flow arrives (Sec. 3.3 "iterates over device ports").
  const TimeNs now = sw.sim().now();
  for (PortIndex p = 0; p < sw.num_ports(); ++p) {
    const Port& port = sw.port(p);
    estimator_.Sample(p, port.queue_bytes(), port.rate_bps(), now);
  }
  // Periodic flow-cache GC at the configured (coarser) cadence.
  const int64_t ticks_per_gc = std::max<int64_t>(config_.gc_period / config_.sample_interval, 1);
  if (ticks_ % ticks_per_gc == 0) {
    stats_.gc_evictions += flow_cache_.Gc(now);
  }
}

size_t LcmpRouter::MemoryBytes() const {
  size_t cpath_bytes = 0;
  for (const auto& t : cpath_tables_) {
    cpath_bytes += t.size();
  }
  return estimator_.MemoryBytes() + flow_cache_.MemoryBytes() + tables_->MemoryBytes() +
         cpath_bytes;
}

size_t LcmpRouter::OwnMemoryBytes() const {
  size_t cpath_bytes = cpath_tables_.capacity() * sizeof(std::vector<uint8_t>);
  for (const auto& t : cpath_tables_) {
    cpath_bytes += t.capacity();
  }
  return estimator_.MemoryBytes() + flow_cache_.AllocatedBytes() + cpath_bytes;
}

PolicyFactory MakeLcmpFactory(const LcmpConfig& config) {
  // One shared bootstrap-table instance; routers are per switch.
  auto tables = std::make_shared<const BootstrapTables>(BootstrapTables::Build(config));
  return [config, tables](SwitchNode& sw) {
    return std::make_unique<LcmpRouter>(sw, config, tables);
  };
}

}  // namespace lcmp
