#include "core/control_plane.h"

#include "core/path_quality.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/timeseries.h"

namespace lcmp {

ControlPlane::ControlPlane(const LcmpConfig& config)
    : config_(config), tables_(BootstrapTables::Build(config)) {}

void ControlPlane::Provision(Network& net) {
  const Graph& g = net.graph();
  for (const NodeId dci : g.DciSwitches()) {
    SwitchNode& sw = net.switch_node(dci);
    auto* router = dynamic_cast<LcmpRouter*>(sw.policy());
    if (router == nullptr) {
      continue;  // this switch runs a different policy (partial rollout)
    }
    for (int layer = 0; layer < sw.num_path_layers(); ++layer) {
      for (DcId dst = 0; dst < g.num_dcs(); ++dst) {
        if (dst == g.vertex(dci).dc) {
          continue;
        }
        const auto candidates = sw.CandidatesTo(dst, layer);
        if (candidates.empty() && layer > 0) {
          continue;  // empty non-minimal layer: data plane falls back to 0
        }
        std::vector<uint8_t> scores(candidates.size());
        for (size_t i = 0; i < candidates.size(); ++i) {
          scores[i] = CalcPathQuality(candidates[i].path_delay_ns, candidates[i].bottleneck_bps,
                                      config_, tables_);
        }
        router->InstallPathTable(dst, layer, std::move(scores));
      }
    }
  }
}

Simulator::TimerId ControlPlane::StartTelemetryLoop(Network& net, TimeNs period) {
  StopTelemetryLoop(net);
  Network* np = &net;
  telemetry_timer_ = net.control_sim().ScheduleEvery(period, [this, np] {
    if (np->control_sim().now() < telemetry_outage_until_) {
      ++telemetry_dropped_sweeps_;
      static obs::Counter* m_dropped =
          obs::MetricsRegistry::Instance().GetCounter("cp.telemetry.dropped_sweeps");
      m_dropped->Inc();
      return;
    }
    latest_telemetry_ = CollectTelemetry(*np);
    ++telemetry_sweeps_;
  });
  return telemetry_timer_;
}

void ControlPlane::StopTelemetryLoop(Network& net) {
  if (telemetry_timer_ != Simulator::kInvalidTimer) {
    net.control_sim().CancelTimer(telemetry_timer_);
    telemetry_timer_ = Simulator::kInvalidTimer;
  }
}

std::vector<SwitchTelemetry> ControlPlane::CollectTelemetry(Network& net) const {
  LCMP_PROFILE_SCOPE("cp.collect_telemetry");
  std::vector<SwitchTelemetry> out;
  const Graph& g = net.graph();
  for (const NodeId dci : g.DciSwitches()) {
    SwitchNode& sw = net.switch_node(dci);
    auto* router = dynamic_cast<LcmpRouter*>(sw.policy());
    if (router == nullptr) {
      continue;
    }
    SwitchTelemetry t;
    t.switch_id = dci;
    t.name = g.vertex(dci).name;
    t.flow_cache_entries = router->flow_cache().size();
    t.new_flow_decisions = router->stats().new_flow_decisions;
    t.cache_hits = router->stats().cache_hits;
    t.fallback_decisions = router->stats().fallback_decisions;
    t.failover_rehashes = router->stats().failover_rehashes;
    t.memory_bytes = router->MemoryBytes();
    for (PortIndex p = 0; p < sw.num_ports(); ++p) {
      const Port& port = sw.port(p);
      t.port_queue_levels.push_back(
          tables_.QueueLevel(port.queue_bytes(), port.rate_bps()));
    }
    out.push_back(std::move(t));
  }
  // Telemetry sweeps double as the metrics sampling cadence: fold the
  // fleet-wide aggregates into gauges and snapshot the registry so
  // --metrics-out captures a time series, not just finals. Reads sim state
  // only — never schedules events — so enabling it cannot perturb the run.
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
    static obs::Gauge* g_entries = reg.GetGauge("lcmp.flow_cache.entries");
    static obs::Gauge* g_memory = reg.GetGauge("lcmp.router.memory_bytes");
    static obs::Gauge* g_switches = reg.GetGauge("cp.telemetry.switches");
    // Fleet-wide routing decision aggregates, so --metrics-out time series
    // show failover behavior (fault episodes appear as rehash steps).
    static obs::Gauge* g_rehashes = reg.GetGauge("lcmp.router.failover_rehashes_total");
    static obs::Gauge* g_new_flows = reg.GetGauge("lcmp.router.new_flow_decisions_total");
    static obs::Gauge* g_cache_hits = reg.GetGauge("lcmp.router.cache_hits_total");
    static obs::Gauge* g_fallbacks = reg.GetGauge("lcmp.router.fallback_decisions_total");
    int64_t entries = 0;
    int64_t memory = 0;
    int64_t rehashes = 0;
    int64_t new_flows = 0;
    int64_t cache_hits = 0;
    int64_t fallbacks = 0;
    for (const SwitchTelemetry& t : out) {
      entries += t.flow_cache_entries;
      memory += static_cast<int64_t>(t.memory_bytes);
      rehashes += t.failover_rehashes;
      new_flows += t.new_flow_decisions;
      cache_hits += t.cache_hits;
      fallbacks += t.fallback_decisions;
    }
    g_entries->Set(entries);
    g_memory->Set(memory);
    g_switches->Set(static_cast<int64_t>(out.size()));
    g_rehashes->Set(rehashes);
    g_new_flows->Set(new_flows);
    g_cache_hits->Set(cache_hits);
    g_fallbacks->Set(fallbacks);
    reg.Snapshot(net.control_sim().now());
  }
  // Time-series telemetry rides the same sweep (DESIGN.md §7): per-DCI-link
  // utilization and queue depth, the transport's last CC rate, and fleet
  // aggregates, each into a bounded TimeSeriesHub ring. These become the
  // Perfetto counter tracks of --trace-out=*.json and the --timeseries-out
  // CSV. Reads-only, like the metrics block above.
  if (obs::TimeSeriesHub::Instance().enabled()) {
    obs::TimeSeriesHub& hub = obs::TimeSeriesHub::Instance();
    const TimeNs now = net.control_sim().now();
    for (const DirectedLinkRef& ref : net.InterDcDirectedLinks()) {
      const std::string label = net.DirectedLinkName(ref);
      obs::TimeSeriesHub::Series* tx = hub.GetSeries("lcmp.link." + label + ".tx_bytes");
      const double bytes = static_cast<double>(ref.port->tx_bytes());
      TimeNs prev_t = 0;
      double prev_bytes = 0;
      if (tx->Last(&prev_t, &prev_bytes) && now > prev_t && ref.port->rate_bps() > 0) {
        // Utilization over the elapsed period: delta bits / (dt * rate).
        const double util = 100.0 * (bytes - prev_bytes) * 8.0 * 1e9 /
                            (static_cast<double>(now - prev_t) *
                             static_cast<double>(ref.port->rate_bps()));
        hub.GetSeries("lcmp.link." + label + ".util_pct")->Sample(now, util);
      }
      tx->Sample(now, bytes);
      hub.GetSeries("lcmp.queue." + label + ".bytes")
          ->Sample(now, static_cast<double>(ref.port->queue_bytes()));
    }
    static obs::Gauge* g_cc_rate =
        obs::MetricsRegistry::Instance().GetGauge("transport.cc.last_rate_bps");
    hub.GetSeries("lcmp.cc.rate_bps")
        ->Sample(now, static_cast<double>(g_cc_rate->MergedValue()));
    // Per-segment rates (lcmp.cc.* tracks); only exported once a SegmentedCc
    // flow has published them, so uniform-CC runs keep their series set.
    static obs::Gauge* g_cc_intra_src =
        obs::MetricsRegistry::Instance().GetGauge("transport.cc.intra_src_rate_bps");
    static obs::Gauge* g_cc_inter =
        obs::MetricsRegistry::Instance().GetGauge("transport.cc.inter_rate_bps");
    static obs::Gauge* g_cc_intra_dst =
        obs::MetricsRegistry::Instance().GetGauge("transport.cc.intra_dst_rate_bps");
    if (g_cc_inter->MergedValue() != 0) {
      hub.GetSeries("lcmp.cc.intra_src_rate_bps")
          ->Sample(now, static_cast<double>(g_cc_intra_src->MergedValue()));
      hub.GetSeries("lcmp.cc.inter_rate_bps")
          ->Sample(now, static_cast<double>(g_cc_inter->MergedValue()));
      hub.GetSeries("lcmp.cc.intra_dst_rate_bps")
          ->Sample(now, static_cast<double>(g_cc_intra_dst->MergedValue()));
    }
    int64_t entries = 0;
    int64_t levels = 0;
    int64_t ports = 0;
    for (const SwitchTelemetry& t : out) {
      entries += t.flow_cache_entries;
      for (const int level : t.port_queue_levels) {
        levels += level;
        ++ports;
      }
    }
    hub.GetSeries("lcmp.flow_cache.entries")->Sample(now, static_cast<double>(entries));
    if (ports > 0) {
      hub.GetSeries("lcmp.cp.queue_level_mean")
          ->Sample(now, static_cast<double>(levels) / static_cast<double>(ports));
    }
  }
  return out;
}

}  // namespace lcmp
