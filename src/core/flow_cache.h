// Bounded flow cache (Sec. 3.1.2 step 4 / Sec. 4).
//
// Maps a flow identifier to the chosen egress with a last-seen timestamp:
//   entry = flowId (8 B) + outDevIdx (4 B) + lastSeen (8 B) = 20 B/flow.
// Established flows refresh lastSeen and forward via the recorded egress,
// guaranteeing per-flow path consistency (no RDMA reordering). A periodic
// garbage collection evicts idle entries; a full cache evicts the stalest
// entry in the probed neighborhood so insertion stays O(1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "obs/metrics.h"

namespace lcmp {

class FlowCache {
 public:
  // The paper's entry layout (20 B).
  struct Entry {
    FlowId flow_id = 0;        // 0 marks an empty slot
    PortIndex out_dev_idx = kInvalidPort;
    TimeNs last_seen = 0;
  };
  static constexpr size_t kBytesPerEntry = 20;  // Sec. 4 accounting
  // Deleted-slot marker: probing continues through tombstones so live entries
  // deeper in a chain stay reachable (flows must never be silently re-placed
  // mid-life, or they would be re-routed and reordered).
  static constexpr FlowId kTombstone = ~FlowId{0};

  // `capacity` is the maximum number of live entries; `idle_timeout` drives
  // both GC and lookup-time staleness rejection.
  FlowCache(int capacity, TimeNs idle_timeout);

  // Established-flow fast path: returns the recorded egress and refreshes
  // lastSeen, or kInvalidPort when the flow is unknown/expired.
  PortIndex Lookup(FlowId flow, TimeNs now);

  // Records the decision for a new flow. Evicts an expired or the stalest
  // probed entry when the table is full.
  void Insert(FlowId flow, PortIndex port, TimeNs now);

  // Invalidates one entry (data-plane fast-failover overwrites entries that
  // point at dead ports, Sec. 3.4).
  void Invalidate(FlowId flow);

  // Periodic GC sweep: evicts entries idle longer than the timeout.
  // Returns the number of evicted entries.
  int Gc(TimeNs now);

  int size() const { return live_; }
  int capacity() const { return capacity_; }

  // Read-only sweep over every live entry (fault-injection invariant
  // monitoring: "no entry still points at a dead egress"). Not a hot path.
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (const Entry& e : slots_) {
      if (e.flow_id != 0 && e.flow_id != kTombstone) {
        fn(e);
      }
    }
  }

  // Paper-accounting memory footprint (entries * 20 B).
  size_t MemoryBytes() const { return static_cast<size_t>(capacity_) * kBytesPerEntry; }
  // Actual heap bytes held right now. Zero until the first Insert: slot
  // storage is lazy so the thousands of non-DCI switches that carry a policy
  // but never cache a flow cost nothing (extreme-scale topologies).
  size_t AllocatedBytes() const { return slots_.capacity() * sizeof(Entry); }

  // --- statistics ---
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t evictions() const { return evictions_; }

 private:
  // Open-addressing with linear probing; power-of-two slot count.
  size_t SlotFor(FlowId flow) const;
  Entry* Find(FlowId flow);
  // Allocates the slot array on first use (Insert only; Lookup on a
  // never-written cache is a plain miss).
  void EnsureSlots();

  int capacity_;
  TimeNs idle_timeout_;
  size_t mask_;
  std::vector<Entry> slots_;
  int live_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  // Fleet-wide metric handles, resolved once at construction (all caches
  // aggregate into the same cells).
  obs::Counter* m_hits_;
  obs::Counter* m_misses_;
  obs::Counter* m_evictions_;
};

}  // namespace lcmp
