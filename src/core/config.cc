#include "core/config.h"

#include "common/logging.h"

namespace lcmp {

bool ValidateConfig(const LcmpConfig& c) {
  bool ok = true;
  auto fail = [&ok](const char* what) {
    LCMP_ERROR("invalid LcmpConfig: %s", what);
    ok = false;
  };
  if (c.alpha < 0 || c.beta < 0 || (c.alpha == 0 && c.beta == 0)) {
    fail("alpha/beta must be non-negative and not both zero");
  }
  if (c.w_dl < 0 || c.w_lc < 0 || (c.w_dl == 0 && c.w_lc == 0)) {
    fail("w_dl/w_lc must be non-negative and not both zero");
  }
  if (c.w_ql < 0 || c.w_tl < 0 || c.w_dp < 0) {
    fail("congestion weights must be non-negative");
  }
  if (c.s_path < 0 || c.s_path > 16 || c.s_cong < 0 || c.s_cong > 16) {
    fail("normalization shifts must be in [0, 16]");
  }
  if (c.delay_saturation <= 0) {
    fail("delay_saturation must be positive");
  } else if (c.delay_shift != LcmpConfig::DelayShiftFor(c.delay_saturation)) {
    fail("delay_shift is stale; set delay_saturation via SetDelaySaturation()");
  }
  if (c.num_cap_classes < 2 || c.num_cap_classes > 256) {
    fail("num_cap_classes must be in [2, 256]");
  }
  if (c.max_link_rate <= 0) {
    fail("max_link_rate must be positive");
  }
  if (c.num_queue_levels < 2 || c.num_queue_levels > 256) {
    fail("num_queue_levels must be in [2, 256]");
  }
  if (c.queue_ref_time <= 0) {
    fail("queue_ref_time must be positive");
  }
  if (c.trend_shift_k < 0 || c.trend_shift_k > 16) {
    fail("trend_shift_k must be in [0, 16]");
  }
  if (c.num_trend_levels < 2 || c.num_trend_levels > 256) {
    fail("num_trend_levels must be in [2, 256]");
  }
  if (c.keep_num <= 0 || c.keep_den <= 0 || c.keep_num > c.keep_den) {
    fail("keep fraction must be in (0, 1]");
  }
  if (c.flow_cache_capacity <= 0) {
    fail("flow_cache_capacity must be positive");
  }
  if (c.flow_idle_timeout <= 0 || c.gc_period <= 0) {
    fail("flow timeouts must be positive");
  }
  if (c.sample_interval <= 0 || c.min_refresh_interval < 0) {
    fail("sampling intervals must be positive");
  }
  return ok;
}

}  // namespace lcmp
