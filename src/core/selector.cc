#include "core/selector.h"

#include <algorithm>

namespace lcmp {

SelectionResult SelectDiverse(std::span<const ScoredCandidate> candidates, uint64_t flow_hash,
                              const LcmpConfig& config, std::vector<ScoredCandidate>& scratch) {
  SelectionResult result;
  if (candidates.empty()) {
    return result;
  }
  if (candidates.size() == 1) {
    result.port = candidates[0].port;
    result.reduced_set_size = 1;
    return result;
  }
  scratch.assign(candidates.begin(), candidates.end());
  // Small-N sort by (cost, port); the port tiebreak keeps ordering stable so
  // equal-cost candidates land in deterministic positions.
  std::sort(scratch.begin(), scratch.end(),
            [](const ScoredCandidate& a, const ScoredCandidate& b) {
              return a.fused_cost < b.fused_cost ||
                     (a.fused_cost == b.fused_cost && a.port < b.port);
            });

  // All-congested detection: when every candidate's congestion score is
  // saturated the scores carry no ranking signal, so selection must NOT
  // collapse onto the single lowest-cost port (that herds every new flow
  // onto one path exactly when the network is most congested, the failure
  // mode Alg. 2's hash stage exists to prevent). The condition is only
  // reported; the two-stage filter + hash below still runs so flows keep
  // spreading across the surviving low-cost candidates.
  result.used_fallback =
      std::all_of(scratch.begin(), scratch.end(), [&](const ScoredCandidate& c) {
        return c.cong_score >= config.all_congested_threshold;
      });

  // Stage 1: drop the high-cost suffix; keep at least one candidate.
  size_t keep = scratch.size() * static_cast<size_t>(config.keep_num) /
                static_cast<size_t>(config.keep_den);
  keep = std::max<size_t>(keep, 1);
  // Stage 2: hash-based pick inside the reduced set.
  const size_t pick = flow_hash % keep;
  result.port = scratch[pick].port;
  result.reduced_set_size = static_cast<int>(keep);
  return result;
}

}  // namespace lcmp
