#include "core/path_quality.h"

#include <algorithm>

namespace lcmp {

uint8_t CalcDelayCost(TimeNs path_delay_ns, const LcmpConfig& config) {
  if (path_delay_ns <= 0) {
    return 0;
  }
  // The shift is precomputed from delay_saturation (LcmpConfig::delay_shift);
  // this function runs per packet and must stay one shift + one compare.
  const int64_t score = path_delay_ns >> config.delay_shift;
  return static_cast<uint8_t>(std::min<int64_t>(score, 255));
}

uint8_t CalcLinkCapCost(int64_t bottleneck_bps, const LcmpConfig& config,
                        const BootstrapTables& tables) {
  if (config.num_cap_classes <= 1) {
    return 0;  // one class: every link is equally cheap
  }
  const int cls = tables.CapacityClass(bottleneck_bps);
  // Invert: the fastest class costs 0, the slowest costs 255.
  const int inverted = config.num_cap_classes - 1 - cls;
  return static_cast<uint8_t>(255 * inverted / (config.num_cap_classes - 1));
}

uint8_t CalcPathQuality(TimeNs path_delay_ns, int64_t bottleneck_bps, const LcmpConfig& config,
                        const BootstrapTables& tables) {
  const int64_t path_score =
      static_cast<int64_t>(config.w_dl) * CalcDelayCost(path_delay_ns, config) +
      static_cast<int64_t>(config.w_lc) * CalcLinkCapCost(bottleneck_bps, config, tables);
  return static_cast<uint8_t>(std::min<int64_t>(path_score >> config.s_path, 255));
}

}  // namespace lcmp
