// Switch bootstrap tables (Sec. 3.1.2 step 1, Fig. 3).
//
// At switch initialization the control plane installs small vectors that let
// the data plane do pure lookups and integer comparisons:
//   - link-capacity thresholds       (rate -> capacity class)
//   - per-port queue thresholds      (queue bytes -> level Q)
//   - level -> 0..255 score table
//   - per-rate-bucket trend normalization (trend accumulator -> level T)
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "core/config.h"

namespace lcmp {

// All tables a DCI switch needs, as installed by the control plane.
class BootstrapTables {
 public:
  // Builds every table from the config. Deterministic and cheap; the control
  // plane re-runs it when provisioning changes.
  static BootstrapTables Build(const LcmpConfig& config);

  // Alg. 2 lookup: capacity class of a link rate (0 = slowest class).
  int CapacityClass(int64_t rate_bps) const;

  // Linear level -> score mapping (index clamped to the table).
  uint8_t LevelScore(int level) const;
  int num_levels() const { return static_cast<int>(level_score_.size()); }

  // Queue level for `queue_bytes` on a port running at `rate_bps`
  // (per-level thresholds are proportional to the link rate).
  int QueueLevel(int64_t queue_bytes, int64_t rate_bps) const;

  // Trend level for a raw trend accumulator value, normalized by the port
  // rate bucket and the observed sampling interval. Non-positive trends map
  // to level 0 (Sec. 3.3: reactions focus on growing queues).
  int TrendLevel(int64_t trend_bytes, int64_t rate_bps, TimeNs sample_interval) const;

  const std::vector<int64_t>& capacity_thresholds() const { return cap_thresholds_; }

  // Approximate on-switch memory footprint of these tables, in bytes
  // (Sec. 4 resource accounting).
  size_t MemoryBytes() const;

 private:
  LcmpConfig config_;
  std::vector<int64_t> cap_thresholds_;  // ascending class upper bounds
  std::vector<uint8_t> level_score_;     // level index -> 0..255
};

}  // namespace lcmp
