// Realtime on-switch congestion estimator (Sec. 3.3).
//
// Per egress port the data plane keeps exactly the registers the paper
// budgets in Sec. 4 (24 B/port): queueCur, queuePrev, trend, durCnt (32-bit)
// and lastSample (64-bit). Sampling updates:
//   Q: instantaneous queue bytes -> level via qThresh -> levelScore
//   T: trend EWMA  T = T - (T >> K) + (delta >> K)        (Eq. 3)
//   D: persistence counter, ++ while Q-level >= high water, decays otherwise
// Fusion:
//   C_cong = min((w_ql*Q + w_tl*T + w_dp*D) >> S_cong, 255)   (Eq. 4/5)
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "core/bootstrap_tables.h"
#include "core/config.h"

namespace lcmp {

// The paper's per-port register block. int32/int64 widths match the Sec. 4
// accounting (4 x 4 B + 8 B = 24 B per port).
struct PortCongestionState {
  int32_t queue_cur = 0;
  int32_t queue_prev = 0;
  int32_t trend = 0;
  int32_t dur_cnt = 0;
  TimeNs last_sample = 0;
};
static_assert(sizeof(PortCongestionState) == 24, "paper budgets 24 B per port");

// Decomposed congestion signals of one port (for telemetry/tests).
struct CongestionSignals {
  int queue_level = 0;
  int trend_level = 0;
  uint8_t q_score = 0;
  uint8_t t_score = 0;
  uint8_t d_score = 0;
  uint8_t fused = 0;  // C_cong
};

class CongestionEstimator {
 public:
  CongestionEstimator(const LcmpConfig& config, const BootstrapTables* tables, int num_ports);

  // Samples one port: feeds the current queue depth into the register block.
  // `now` must be monotonically non-decreasing per port.
  void Sample(int port, int64_t queue_bytes, int64_t rate_bps, TimeNs now);

  // True when the port's last sample is older than min_refresh_interval
  // (the new-flow path refreshes stale ports before scoring, Sec. 3.1.2 (1)).
  bool NeedsRefresh(int port, TimeNs now) const;

  // C_cong for the port given its current registers (Eq. 4/5).
  uint8_t CongScore(int port, int64_t rate_bps) const;

  // Full decomposition (telemetry, ablation tests).
  CongestionSignals Signals(int port, int64_t rate_bps) const;

  const PortCongestionState& state(int port) const {
    return ports_[static_cast<size_t>(port)];
  }

  // True once the port has been sampled at least once. Simulator bookkeeping,
  // not a data-plane register: it exists so a legitimate sample at t=0 is not
  // mistaken for "never sampled" (last_sample == 0 is ambiguous).
  bool has_sample(int port) const { return has_sample_[static_cast<size_t>(port)] != 0; }

  // Sec. 4 accounting: register bytes for all ports.
  size_t MemoryBytes() const { return ports_.size() * sizeof(PortCongestionState); }

 private:
  LcmpConfig config_;
  const BootstrapTables* tables_;
  std::vector<PortCongestionState> ports_;
  // Parallel to ports_; kept outside PortCongestionState so the register
  // block stays at the paper's 24 B/port budget.
  std::vector<uint8_t> has_sample_;
};

}  // namespace lcmp
