// The LCMP data plane (Sec. 3.1.2): per-DCI-switch multipath policy fusing
// the control-plane path-quality score with on-switch congestion signals.
//
// Per-packet fast path: flow-cache lookup, timestamp refresh, forward.
// Per-new-flow slow path (steps 1-5 of Fig. 2):
//   (1) refresh congestion registers of stale candidate ports
//   (2) per-candidate scores: C_path lookup, C_cong from Q/T/D
//   (3) fused cost C(p) = alpha*C_path + beta*C_cong           (Eq. 1)
//   (4) filter the high-cost suffix + hash in the reduced set  (Sec. 3.4)
//   (5) record the mapping in the flow cache
// Failures: a cached egress that went down invalidates the entry on the fly
// and re-runs selection ("lazy update" fast failover, Sec. 3.4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/bootstrap_tables.h"
#include "core/config.h"
#include "core/congestion_estimator.h"
#include "core/flow_cache.h"
#include "core/selector.h"
#include "sim/node.h"

namespace lcmp {

// Decision counters exposed to the control plane's telemetry collection.
struct LcmpRouterStats {
  int64_t packets = 0;
  int64_t new_flow_decisions = 0;
  int64_t cache_hits = 0;
  int64_t fallback_decisions = 0;   // decisions with every candidate saturated
  int64_t failover_rehashes = 0;    // cached egress dead -> re-selected
  int64_t gc_evictions = 0;
};

class LcmpRouter : public MultipathPolicy {
 public:
  // `tables` are the bootstrap tables installed by the control plane and are
  // shared across switches (they only depend on the config).
  LcmpRouter(SwitchNode& sw, const LcmpConfig& config,
             std::shared_ptr<const BootstrapTables> tables);

  PortIndex SelectPort(SwitchNode& sw, const Packet& pkt,
                       std::span<const PathCandidate> candidates) override;

  // Monitor cadence: background port sampling + periodic flow-cache GC.
  TimeNs tick_interval() const override { return config_.sample_interval; }
  void OnTick(SwitchNode& sw) override;

  const char* name() const override { return "lcmp"; }

  // Control-plane install hook: precomputed C_path scores for `dst_dc`,
  // aligned with the switch's candidate order. Called by ControlPlane; when
  // absent for a destination, the router builds the table on demand from the
  // candidate attributes (Sec. 3.1.2: on-demand table creation). The 2-arg
  // form targets path layer 0 (the only layer under plain downhill routing).
  void InstallPathTable(DcId dst_dc, std::vector<uint8_t> cpath_scores);
  void InstallPathTable(DcId dst_dc, int layer, std::vector<uint8_t> cpath_scores);

  const LcmpRouterStats& stats() const { return stats_; }
  const FlowCache& flow_cache() const { return flow_cache_; }
  const CongestionEstimator& estimator() const { return estimator_; }
  const LcmpConfig& config() const { return config_; }

  // Sec. 4 resource accounting: registers + flow cache + tables.
  size_t MemoryBytes() const;
  // Bytes this router actually holds on the heap right now, excluding the
  // BootstrapTables shared across the fleet. Unlike MemoryBytes() (the
  // paper's worst-case accounting), this reflects lazy flow-cache allocation
  // — the number bench/scalability_v2 sums per switch.
  size_t OwnMemoryBytes() const;

 private:
  const std::vector<uint8_t>& PathTableFor(SwitchNode& sw, DcId dst_dc, int layer,
                                           std::span<const PathCandidate> candidates);
  // cpath_tables_ slot for (dst_dc, layer); grows the table as needed.
  size_t CpathSlot(DcId dst_dc, int layer);
  void RefreshCongestion(SwitchNode& sw, std::span<const PathCandidate> candidates);
  PortIndex DecideNewFlow(SwitchNode& sw, const Packet& pkt,
                          std::span<const PathCandidate> candidates);

  LcmpConfig config_;
  std::shared_ptr<const BootstrapTables> tables_;
  CongestionEstimator estimator_;
  FlowCache flow_cache_;
  // cpath_tables_[layer * layout_dcs_ + dst_dc][candidate_idx] = C_path
  // score. layout_dcs_/layout_layers_ mirror the switch's path-table shape
  // (layout_layers_ == 1 under plain downhill routing).
  int layout_dcs_ = 1;
  int layout_layers_ = 1;
  std::vector<std::vector<uint8_t>> cpath_tables_;
  std::vector<ScoredCandidate> scored_;   // scratch, reused per decision
  std::vector<ScoredCandidate> scratch_;  // scratch for SelectDiverse
  LcmpRouterStats stats_;
  int64_t ticks_ = 0;
};

// Factory wiring LcmpRouter as the per-DCI policy of a Network.
PolicyFactory MakeLcmpFactory(const LcmpConfig& config);

}  // namespace lcmp
