#include "core/congestion_estimator.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "obs/metrics.h"

namespace lcmp {

CongestionEstimator::CongestionEstimator(const LcmpConfig& config, const BootstrapTables* tables,
                                         int num_ports)
    : config_(config),
      tables_(tables),
      ports_(static_cast<size_t>(num_ports)),
      has_sample_(static_cast<size_t>(num_ports), 0) {
  LCMP_CHECK(tables_ != nullptr);
}

void CongestionEstimator::Sample(int port, int64_t queue_bytes, int64_t rate_bps, TimeNs now) {
  PortCongestionState& s = ports_[static_cast<size_t>(port)];
  const int32_t q = static_cast<int32_t>(
      std::min<int64_t>(queue_bytes, std::numeric_limits<int32_t>::max()));
  int64_t delta = static_cast<int64_t>(q) - s.queue_cur;
  // Normalize the delta to the nominal cadence so T stays comparable when
  // the monitor runs slightly early or late ("robust to modest variations in
  // sampling frequency", Sec. 3.3). Only a prior sample makes `observed`
  // meaningful — tracked by an explicit flag, because last_sample == 0 is
  // also a legitimate timestamp for a port first sampled at t=0.
  const TimeNs observed = now - s.last_sample;
  if (has_sample_[static_cast<size_t>(port)] && observed > 0 &&
      observed != config_.sample_interval) {
    delta = delta * config_.sample_interval / observed;
  }
  s.queue_prev = s.queue_cur;
  s.queue_cur = q;
  // Eq. (3): shift-based EWMA accumulator.
  const int k = config_.trend_shift_k;
  const int64_t t_new = static_cast<int64_t>(s.trend) - (s.trend >> k) + (delta >> k);
  s.trend = static_cast<int32_t>(
      std::clamp<int64_t>(t_new, std::numeric_limits<int32_t>::min(),
                          std::numeric_limits<int32_t>::max()));
  // Duration (persistence) penalty counter.
  const int level = tables_->QueueLevel(s.queue_cur, rate_bps);
  if (level >= config_.HighWaterLevel()) {
    if (s.dur_cnt < std::numeric_limits<int32_t>::max() - 1) {
      ++s.dur_cnt;
    }
  } else {
    s.dur_cnt = std::max(0, s.dur_cnt - 1);
  }
  s.last_sample = now;
  has_sample_[static_cast<size_t>(port)] = 1;
  // Q/T/D score distributions (Sec. 3.3 registers). Signals() is only worth
  // computing when the registry is live, so the whole block sits behind the
  // single obs branch; handles are function-local statics because estimators
  // are per-switch and all aggregate into the same cells.
  if (obs::MetricsEnabled()) {
    static const std::vector<int64_t> kScoreBounds = {0, 16, 32, 64, 96, 128, 160, 192, 224};
    static obs::Histogram* h_q =
        obs::MetricsRegistry::Instance().GetHistogram("lcmp.cong.q_score", kScoreBounds);
    static obs::Histogram* h_t =
        obs::MetricsRegistry::Instance().GetHistogram("lcmp.cong.t_score", kScoreBounds);
    static obs::Histogram* h_d =
        obs::MetricsRegistry::Instance().GetHistogram("lcmp.cong.d_score", kScoreBounds);
    static obs::Histogram* h_fused =
        obs::MetricsRegistry::Instance().GetHistogram("lcmp.cong.fused", kScoreBounds);
    const CongestionSignals sig = Signals(port, rate_bps);
    h_q->AddAlways(sig.q_score);
    h_t->AddAlways(sig.t_score);
    h_d->AddAlways(sig.d_score);
    h_fused->AddAlways(sig.fused);
  }
}

bool CongestionEstimator::NeedsRefresh(int port, TimeNs now) const {
  const PortCongestionState& s = ports_[static_cast<size_t>(port)];
  return now - s.last_sample >= config_.min_refresh_interval;
}

CongestionSignals CongestionEstimator::Signals(int port, int64_t rate_bps) const {
  const PortCongestionState& s = ports_[static_cast<size_t>(port)];
  CongestionSignals out;
  out.queue_level = tables_->QueueLevel(s.queue_cur, rate_bps);
  out.q_score = tables_->LevelScore(out.queue_level);
  out.trend_level = tables_->TrendLevel(s.trend, rate_bps, config_.sample_interval);
  out.t_score = tables_->LevelScore(out.trend_level);
  const int64_t d_raw = static_cast<int64_t>(s.dur_cnt) << config_.dur_score_shift;
  out.d_score = static_cast<uint8_t>(std::min<int64_t>(d_raw, 255));
  // Eq. (4)/(5).
  const int64_t fused = static_cast<int64_t>(config_.w_ql) * out.q_score +
                        static_cast<int64_t>(config_.w_tl) * out.t_score +
                        static_cast<int64_t>(config_.w_dp) * out.d_score;
  out.fused = static_cast<uint8_t>(std::min<int64_t>(fused >> config_.s_cong, 255));
  return out;
}

uint8_t CongestionEstimator::CongScore(int port, int64_t rate_bps) const {
  return Signals(port, rate_bps).fused;
}

}  // namespace lcmp
