#include "core/flow_cache.h"

#include <algorithm>

#include "common/hashing.h"
#include "common/logging.h"

namespace lcmp {
namespace {

// Max linear-probe distance before insertion force-evicts the stalest
// probed slot (keeps every operation O(1), as a hardware table would be).
constexpr size_t kProbeLimit = 8;

constexpr FlowId kTombstone = FlowCache::kTombstone;

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

FlowCache::FlowCache(int capacity, TimeNs idle_timeout)
    : capacity_(capacity), idle_timeout_(idle_timeout), mask_(0) {
  LCMP_CHECK(capacity > 0);
  // Slot storage is allocated lazily on the first Insert (EnsureSlots): every
  // switch owns a policy instance, but only DCI switches ever cache flows, so
  // eager allocation would waste megabytes per interior switch at scale.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  m_hits_ = reg.GetCounter("lcmp.flow_cache.hits");
  m_misses_ = reg.GetCounter("lcmp.flow_cache.misses");
  m_evictions_ = reg.GetCounter("lcmp.flow_cache.evictions");
}

size_t FlowCache::SlotFor(FlowId flow) const { return Mix64(flow) & mask_; }

void FlowCache::EnsureSlots() {
  if (!slots_.empty()) {
    return;
  }
  // 2x slots keeps probe chains short at full capacity.
  const size_t n = NextPow2(static_cast<size_t>(capacity_) * 2);
  slots_.assign(n, Entry{});
  mask_ = n - 1;
}

FlowCache::Entry* FlowCache::Find(FlowId flow) {
  if (slots_.empty()) {
    return nullptr;
  }
  size_t i = SlotFor(flow);
  for (size_t probe = 0; probe < kProbeLimit; ++probe, i = (i + 1) & mask_) {
    Entry& e = slots_[i];
    if (e.flow_id == flow) {
      return &e;
    }
    if (e.flow_id == 0) {
      return nullptr;  // chain ends at the first never-used slot
    }
    // Tombstones and other flows: keep probing.
  }
  return nullptr;
}

PortIndex FlowCache::Lookup(FlowId flow, TimeNs now) {
  Entry* e = Find(flow);
  if (e == nullptr) {
    ++misses_;
    m_misses_->Inc();
    return kInvalidPort;
  }
  if (now - e->last_seen > idle_timeout_) {
    // Expired mapping: treat as a miss so the flow is re-placed (matches the
    // GC semantics even between sweeps).
    e->flow_id = kTombstone;
    --live_;
    ++evictions_;
    ++misses_;
    m_evictions_->Inc();
    m_misses_->Inc();
    return kInvalidPort;
  }
  e->last_seen = now;
  ++hits_;
  m_hits_->Inc();
  return e->out_dev_idx;
}

void FlowCache::Insert(FlowId flow, PortIndex port, TimeNs now) {
  LCMP_CHECK(flow != 0 && flow != kTombstone);
  EnsureSlots();
  size_t i = SlotFor(flow);
  Entry* free_slot = nullptr;
  Entry* victim = nullptr;
  for (size_t probe = 0; probe < kProbeLimit; ++probe, i = (i + 1) & mask_) {
    Entry& e = slots_[i];
    if (e.flow_id == flow) {
      e.out_dev_idx = port;
      e.last_seen = now;
      return;
    }
    if (e.flow_id == 0 || e.flow_id == kTombstone) {
      if (free_slot == nullptr) {
        free_slot = &e;
      }
      if (e.flow_id == 0) {
        break;  // nothing lives beyond a never-used slot
      }
      continue;
    }
    if (victim == nullptr || e.last_seen < victim->last_seen) {
      victim = &e;
    }
  }
  if (free_slot != nullptr && live_ < capacity_) {
    *free_slot = Entry{flow, port, now};
    ++live_;
    return;
  }
  // Probe window exhausted or cache at capacity: overwrite the stalest
  // probed entry. Bounded state beats completeness (Sec. 2.3 challenge 3);
  // the displaced flow is simply re-placed on its next packet.
  if (victim != nullptr) {
    *victim = Entry{flow, port, now};
    ++evictions_;
    m_evictions_->Inc();
  }
  // Remaining case (cache at capacity and every probed slot free/tombstone)
  // drops the mapping: the capacity bound is a hard guarantee and the flow
  // is simply re-decided on its next packet.
}

void FlowCache::Invalidate(FlowId flow) {
  Entry* e = Find(flow);
  if (e != nullptr && e->flow_id != 0 && e->flow_id != kTombstone) {
    e->flow_id = kTombstone;
    --live_;
  }
}

int FlowCache::Gc(TimeNs now) {
  int evicted = 0;
  for (Entry& e : slots_) {
    if (e.flow_id != 0 && e.flow_id != kTombstone && now - e.last_seen > idle_timeout_) {
      e.flow_id = kTombstone;
      --live_;
      ++evicted;
    }
  }
  evictions_ += evicted;
  m_evictions_->Add(evicted);
  return evicted;
}

}  // namespace lcmp
