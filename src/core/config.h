// LCMP tunables. Defaults follow the paper's recommended operating point:
// global fusion (alpha, beta) = (3, 1) [Sec. 5 / 7.2], path-quality weights
// (w_dl, w_lc) = (3, 1) [Sec. 7.3], congestion weights (w_ql, w_tl, w_dp) =
// (2, 1, 1) [Sec. 7.4], EWMA shift K = 3 [Sec. 3.3], keep-lower-half
// filtering [Sec. 3.4].
#pragma once

#include <cstdint>

#include "common/types.h"

namespace lcmp {

struct LcmpConfig {
  // ---- Eq. (1): C(p) = alpha * C_path + beta * C_cong ----
  int alpha = 3;
  int beta = 1;

  // ---- Eq. (2): C_path = min((w_dl*delayScore + w_lc*capScore) >> s_path, 255) ----
  int w_dl = 3;
  int w_lc = 1;
  int s_path = 2;

  // Alg. 1: delayScore = min(delay >> delay_shift, 255), expressed as a
  // saturation point: the one-way path delay that maps to score 255.
  // `delay_shift` is derived from the saturation point once — CalcDelayCost
  // runs per packet and must not re-derive it — so always change the pair
  // through SetDelaySaturation(); ValidateConfig rejects a stale shift.
  TimeNs delay_saturation = Milliseconds(64);
  int delay_shift = DelayShiftFor(Milliseconds(64));

  // Smallest shift s such that (saturation >> s) <= 255; the data plane then
  // computes delayScore = min(delay >> s, 255) with one shift + one compare.
  static constexpr int DelayShiftFor(TimeNs saturation_ns) {
    int s = 0;
    while ((saturation_ns >> s) > 255 && s < 62) {
      ++s;
    }
    return s;
  }

  void SetDelaySaturation(TimeNs saturation_ns) {
    delay_saturation = saturation_ns;
    delay_shift = DelayShiftFor(saturation_ns);
  }

  // Alg. 2: link-capacity classes. Class thresholds are linear in
  // [0, max_link_rate]; higher capacity -> lower cost score.
  int num_cap_classes = 10;
  int64_t max_link_rate = Gbps(400);

  // ---- Eq. (4)/(5): C_cong = min((w_ql*Q + w_tl*T + w_dp*D) >> s_cong, 255) ----
  int w_ql = 2;
  int w_tl = 1;
  int w_dp = 1;
  int s_cong = 2;

  // Queue quantization: per-port thresholds divide [0, queue_ref] into
  // num_queue_levels levels, queue_ref = rate * queue_ref_time / 8.
  // (The paper divides the raw buffer; with multi-GB long-haul buffers that
  // is insensitive at ECN-controlled occupancies, so we anchor the levels to
  // a line-rate time span — same table shape, congestion-relevant scale.)
  int num_queue_levels = 16;
  TimeNs queue_ref_time = Microseconds(400);

  // Eq. (3) trend EWMA shift: T = T - (T >> K) + (delta >> K).
  int trend_shift_k = 3;
  // Trend normalization: level thresholds span [0, rate * dt / 8] growth per
  // sampling interval, num_trend_levels levels.
  int num_trend_levels = 16;

  // Duration penalty: counter increments while Q-level >= high-water level
  // (fraction of num_queue_levels), decays by 1 otherwise; the penalty score
  // is min(counter << dur_score_shift, 255).
  int high_water_level_num = 3;  // high water = levels * 3 / 4
  int high_water_level_den = 4;
  int dur_score_shift = 4;

  // Monitor cadence: background sampling of port registers, plus an
  // on-demand refresh when a new flow arrives and the last sample is stale.
  TimeNs sample_interval = Microseconds(100);
  TimeNs min_refresh_interval = Microseconds(10);

  // Two-stage selection (Sec. 3.4): keep the lowest keep_num/keep_den of the
  // sorted candidates, then hash inside the reduced set.
  int keep_num = 1;
  int keep_den = 2;
  // Fallback: if every candidate's congestion score is >= this, pick the
  // minimum fused cost instead of hashing among uniformly bad choices.
  int all_congested_threshold = 224;

  // Flow cache (Sec. 3.1.2 step 4): bounded entries, idle-timeout GC.
  int flow_cache_capacity = 50'000;
  // When set, the harness right-sizes flow_cache_capacity to the experiment's
  // flow count (clamped to [1024, flow_cache_capacity]) before building
  // policies — extreme-scale sweeps would otherwise pay the paper's 50k-entry
  // worst case on every DCI switch.
  bool flow_cache_auto = false;
  TimeNs flow_idle_timeout = Milliseconds(500);
  TimeNs gc_period = Milliseconds(100);

  // Fault-injection negative-testing knob: when set, SelectPort returns a
  // cached egress even if that port is down, i.e. the Sec. 3.4 lazy-update
  // fast failover is switched OFF. Exists so the invariant monitor can prove
  // it catches a system that pins flows to dead paths; never enable outside
  // tests.
  bool disable_failover = false;

  // Derived helpers.
  int HighWaterLevel() const {
    return num_queue_levels * high_water_level_num / high_water_level_den;
  }
};

// Validates invariants (positive weights/shifts, sane levels); returns false
// and logs the offending field on failure.
bool ValidateConfig(const LcmpConfig& config);

}  // namespace lcmp
