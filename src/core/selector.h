// Diversity-preserving two-stage selection (Sec. 3.4).
//
// Stage 1 sorts candidates by fused cost C(p) and removes the high-cost
// suffix (keeping the lower keep_num/keep_den by default the lower half).
// Stage 2 hashes the flow into the reduced set (ECMP inside the low-cost
// subset) so simultaneous arrivals do not herd onto one egress.
//
// All-congested handling: when every candidate's congestion score saturates,
// the scores carry no ranking signal, so the hash stage still spreads flows
// across the kept low-cost candidates (pinning to the single cheapest port
// would herd every new flow onto one path precisely under overload). The
// condition is surfaced via SelectionResult::used_fallback for telemetry.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "core/config.h"

namespace lcmp {

// One scored candidate entering selection.
struct ScoredCandidate {
  PortIndex port = kInvalidPort;
  int32_t fused_cost = 0;    // C(p) = alpha*C_path + beta*C_cong
  uint8_t cong_score = 0;    // C_cong(p), drives the all-congested fallback
};

// Outcome breakdown, exposed for tests and telemetry.
struct SelectionResult {
  PortIndex port = kInvalidPort;
  int reduced_set_size = 0;
  bool used_fallback = false;  // every candidate was saturated-congested
};

// Applies the two-stage selection. `flow_hash` is the per-flow hash used for
// stage 2. `scratch` is caller-provided to keep the hot path allocation-free
// (the data-plane equivalent sorts in registers).
SelectionResult SelectDiverse(std::span<const ScoredCandidate> candidates, uint64_t flow_hash,
                              const LcmpConfig& config,
                              std::vector<ScoredCandidate>& scratch);

}  // namespace lcmp
