// Compact control-plane path-quality representation (Sec. 3.2).
//
//   delayScore   = CalcDelayCost(one-way delay)        (Alg. 1)
//   linkCapScore = CalcLinkCapCost(bottleneck rate)    (Alg. 2)
//   C_path       = min((w_dl*delayScore + w_lc*linkCapScore) >> S_path, 255)
//
// All functions are pure, integer-only (shifts, adds, compares, one small
// table lookup) and return 8-bit scores.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "core/bootstrap_tables.h"
#include "core/config.h"

namespace lcmp {

// Alg. 1: saturating, shift-based mapping from one-way path delay to a 0-255
// score. The shift amount is derived from config.delay_saturation so that
// delays at or above the saturation point map to 255.
uint8_t CalcDelayCost(TimeNs path_delay_ns, const LcmpConfig& config);

// Alg. 2: capacity-class lookup. Faster links fall into higher classes and
// get *lower* cost scores.
uint8_t CalcLinkCapCost(int64_t bottleneck_bps, const LcmpConfig& config,
                        const BootstrapTables& tables);

// Eq. (2): fused path-quality score.
uint8_t CalcPathQuality(TimeNs path_delay_ns, int64_t bottleneck_bps, const LcmpConfig& config,
                        const BootstrapTables& tables);

}  // namespace lcmp
