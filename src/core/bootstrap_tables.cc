#include "core/bootstrap_tables.h"

#include <algorithm>

#include "common/logging.h"

namespace lcmp {

BootstrapTables BootstrapTables::Build(const LcmpConfig& config) {
  BootstrapTables t;
  t.config_ = config;
  // Capacity class thresholds: N ascending boundaries proportional to the
  // configured maximum link rate (Fig. 3 "link capacity thresholds").
  t.cap_thresholds_.resize(static_cast<size_t>(config.num_cap_classes));
  for (int i = 0; i < config.num_cap_classes; ++i) {
    t.cap_thresholds_[static_cast<size_t>(i)] =
        config.max_link_rate * (i + 1) / config.num_cap_classes;
  }
  // Level score table: linear 0..255 over the level range, precomputed so
  // the data plane never multiplies per packet (Fig. 3 "level score table").
  const int levels = std::max(config.num_queue_levels, config.num_trend_levels);
  t.level_score_.resize(static_cast<size_t>(levels));
  for (int i = 0; i < levels; ++i) {
    t.level_score_[static_cast<size_t>(i)] =
        static_cast<uint8_t>(levels <= 1 ? 0 : 255 * i / (levels - 1));
  }
  return t;
}

int BootstrapTables::CapacityClass(int64_t rate_bps) const {
  // Linear scan over a ~10-entry vector: exactly the TCAM-style lookup the
  // paper budgets for.
  for (size_t i = 0; i < cap_thresholds_.size(); ++i) {
    if (rate_bps <= cap_thresholds_[i]) {
      return static_cast<int>(i);
    }
  }
  return static_cast<int>(cap_thresholds_.size()) - 1;
}

uint8_t BootstrapTables::LevelScore(int level) const {
  if (level <= 0 || level_score_.empty()) {
    return 0;
  }
  const size_t idx = std::min(static_cast<size_t>(level), level_score_.size() - 1);
  return level_score_[idx];
}

int BootstrapTables::QueueLevel(int64_t queue_bytes, int64_t rate_bps) const {
  if (queue_bytes <= 0) {
    return 0;
  }
  // queue_ref = rate * queue_ref_time / 8 bits; level span = ref / levels.
  const int64_t ref_bytes = static_cast<int64_t>(
      static_cast<__int128>(rate_bps) * config_.queue_ref_time / (8 * kNsPerSec));
  if (ref_bytes <= 0) {
    return config_.num_queue_levels - 1;
  }
  const int64_t level = queue_bytes * config_.num_queue_levels / ref_bytes;
  return static_cast<int>(
      std::min<int64_t>(level, config_.num_queue_levels - 1));
}

int BootstrapTables::TrendLevel(int64_t trend_bytes, int64_t rate_bps,
                                TimeNs sample_interval) const {
  if (trend_bytes <= 0) {
    return 0;
  }
  // Full-scale trend = bytes arriving at line rate during one sampling
  // interval; thresholds divide that range into num_trend_levels levels.
  const int64_t full_scale = static_cast<int64_t>(
      static_cast<__int128>(rate_bps) * std::max<TimeNs>(sample_interval, 1) / (8 * kNsPerSec));
  if (full_scale <= 0) {
    return config_.num_trend_levels - 1;
  }
  const int64_t level = trend_bytes * config_.num_trend_levels / full_scale;
  return static_cast<int>(std::min<int64_t>(level, config_.num_trend_levels - 1));
}

size_t BootstrapTables::MemoryBytes() const {
  return cap_thresholds_.size() * sizeof(int64_t) + level_score_.size() * sizeof(uint8_t);
}

}  // namespace lcmp
