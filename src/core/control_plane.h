// Control plane (Sec. 5 "control-plane provisioning"): slow-path work only.
//
// Responsibilities:
//   - build the bootstrap tables from the operator config,
//   - precompute per-path C_path scores from the topology's propagation
//     delays and provisioned capacities and install them on each DCI switch,
//   - push the default fusion weights,
//   - collect lightweight telemetry (queue levels, flow-cache occupancy).
#pragma once

#include <string>
#include <vector>

#include "core/config.h"
#include "core/lcmp_router.h"
#include "sim/network.h"

namespace lcmp {

// Telemetry snapshot for one DCI switch.
struct SwitchTelemetry {
  NodeId switch_id = kInvalidNode;
  std::string name;
  int flow_cache_entries = 0;
  int64_t new_flow_decisions = 0;
  int64_t cache_hits = 0;
  int64_t fallback_decisions = 0;
  int64_t failover_rehashes = 0;
  size_t memory_bytes = 0;
  std::vector<int> port_queue_levels;  // per inter-DC port
};

class ControlPlane {
 public:
  explicit ControlPlane(const LcmpConfig& config);

  // Installs precomputed C_path tables on every DCI switch running an
  // LcmpRouter. Safe to call again after provisioning changes.
  void Provision(Network& net);

  // Collects per-switch telemetry (Sec. 5 "lightweight telemetry").
  std::vector<SwitchTelemetry> CollectTelemetry(Network& net) const;

  // Runs CollectTelemetry as a standing control loop on the network's
  // simulator: one recurring timer with one stored callable (no per-sweep
  // closure rebuilds). The latest snapshot is kept for inspection between
  // sweeps. Not started by default — periodic sweeps add events, so callers
  // that need bit-identical legacy traces must opt in.
  Simulator::TimerId StartTelemetryLoop(Network& net, TimeNs period);
  void StopTelemetryLoop(Network& net);
  const std::vector<SwitchTelemetry>& latest_telemetry() const { return latest_telemetry_; }
  int64_t telemetry_sweeps() const { return telemetry_sweeps_; }

  // Control-plane fault injection: telemetry sweeps scheduled before `until`
  // are dropped (the management network lost the switch), modeling the
  // telemetry-loss fault class. The data plane is unaffected — LCMP's
  // decisions read on-switch registers, which is the paper's robustness
  // argument for why losing the 100 ms control loop is survivable.
  void SetTelemetryOutageUntil(TimeNs until) { telemetry_outage_until_ = until; }
  TimeNs telemetry_outage_until() const { return telemetry_outage_until_; }
  int64_t telemetry_dropped_sweeps() const { return telemetry_dropped_sweeps_; }

  const LcmpConfig& config() const { return config_; }
  const BootstrapTables& tables() const { return tables_; }

 private:
  LcmpConfig config_;
  BootstrapTables tables_;
  Simulator::TimerId telemetry_timer_ = Simulator::kInvalidTimer;
  std::vector<SwitchTelemetry> latest_telemetry_;
  int64_t telemetry_sweeps_ = 0;
  TimeNs telemetry_outage_until_ = 0;
  int64_t telemetry_dropped_sweeps_ = 0;
};

}  // namespace lcmp
