// Topology builders for every scenario in the paper's evaluation:
//   - small synthetic graphs for unit tests (linear, dumbbell)
//   - the 8-DC capacity/delay-asymmetric testbed of Fig. 1a / Fig. 4a
//   - the 13-DC Europe-like BSONetwork topology of Fig. 4b
//
// Intra-DC fabrics come in two fidelities:
//   - kCollapsed: hosts hang directly off the DCI switch through fat,
//     low-latency links (the fabric is never the bottleneck; LCMP acts only
//     at DCI switches, so this preserves the studied mechanism), and
//   - kLeafSpine: the paper's full 1 DCI + 2 spine + 4 leaf + 16 server pod.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "topo/graph.h"

namespace lcmp {

// Dedicated topology Rng stream. Every generated WAN draws exclusively from
// TopoRng(seed), never from the workload/chaos streams, so a generated
// topology is a pure function of its seed: bit-identical across --shards,
// --jobs and traffic settings. (The salt matches the stream BuildRandomWan
// has always used, keeping historical seeds stable.)
inline constexpr uint64_t kTopoSeedSalt = 0xbadc0ffeULL;
inline Rng TopoRng(uint64_t seed) { return Rng(seed ^ kTopoSeedSalt); }

enum class FabricKind : uint8_t { kCollapsed, kLeafSpine };

// Per-DC fabric parameters (defaults follow the paper's testbed section).
struct FabricOptions {
  FabricKind kind = FabricKind::kCollapsed;
  int hosts = 8;  // per DC (collapsed mode); leaf-spine mode uses 16.
  int leaves = 4;
  int spines = 2;
  int hosts_per_leaf = 4;
  int64_t host_link_bps = Gbps(100);
  int64_t leaf_spine_bps = Gbps(100);
  int64_t spine_dci_bps = Gbps(400);
  TimeNs intra_delay_ns = Microseconds(1);
};

// Builds one datacenter pod inside `g` and returns the DCI switch id.
NodeId BuildDcFabric(Graph& g, DcId dc, const FabricOptions& opts);

// -------- Test topologies --------

// src host - switch - dst host, single path. For transport unit tests.
struct LinearTopo {
  Graph graph;
  NodeId src_host;
  NodeId dst_host;
  NodeId sw;
};
LinearTopo BuildLinear(int64_t rate_bps = Gbps(100), TimeNs delay_ns = Microseconds(1));

// Two collapsed DCs joined by `parallel_links` equal inter-DC links.
Graph BuildDumbbell(int parallel_links, int hosts_per_dc, int64_t inter_rate_bps,
                    TimeNs inter_delay_ns);

// -------- Paper topologies --------

// One first-hop alternative of the 8-DC topology (DC1 -> DCk -> DC8).
struct Testbed8PathClass {
  int64_t rate_bps;
  TimeNs per_link_delay_ns;
};

struct Testbed8Options {
  FabricOptions fabric;
  // Six transit DCs (DC2..DC7), each defining one DC1->DCk->DC8 route whose
  // two legs share the same rate/delay. Capacity classes high/medium/low,
  // each with one low-delay and one high-delay member (paper Fig. 1a).
  Testbed8PathClass classes[6] = {
      {Gbps(200), Milliseconds(125)},   // via DC2: high cap, high delay
      {Gbps(200), Milliseconds(30)},    // via DC3: high cap, low delay
      {Gbps(100), Milliseconds(125)},   // via DC4: medium cap, high delay
      {Gbps(100), Milliseconds(15)},    // via DC5: medium cap, low delay
      {Gbps(40), Milliseconds(25)},     // via DC6: low cap, high(er) delay
      {Gbps(40), Milliseconds(5)},      // via DC7: low cap, low delay
  };
  // Inter-DC egress buffering; the paper provisions multi-GB buffers on
  // long-haul ports so RDMA stays lossless.
  int64_t inter_dc_buffer_bytes = int64_t{2} * 1024 * 1024 * 1024;
};

// The Fig. 1a topology: DC1 and DC8 exchange traffic over six two-hop routes
// through transit DCs 2..7. Transit DCs host no servers.
Graph BuildTestbed8(const Testbed8Options& opts = {});

struct Bso13Options {
  FabricOptions fabric;
  int64_t inter_dc_buffer_bytes = int64_t{2} * 1024 * 1024 * 1024;
};

// 13-DC Europe-spanning topology modeled after BSONetworkSolutions from the
// Internet Topology Zoo: a sparse backbone where only a minority of DC pairs
// see multiple candidate routes. Delay classes 1 ms (200 km), 5 ms (1000 km)
// and 10 ms (2000 km); capacities 40/100/200 Gbps.
Graph BuildBso13(const Bso13Options& opts = {});

struct RandomWanOptions {
  int num_dcs = 16;
  // Chords added on top of the connectivity ring; each picks random distinct
  // endpoints, a random capacity from {40, 100, 200} Gbps and a random delay
  // class from {1, 5, 10} ms.
  int extra_chords = 8;
  uint64_t seed = 1;
  FabricOptions fabric;
  int64_t inter_dc_buffer_bytes = int64_t{2} * 1024 * 1024 * 1024;
};

// Random sparse WAN: a ring over all DCs (guaranteed connectivity) plus
// `extra_chords` random long-haul links. Used for property tests and
// scalability sweeps; deterministic per seed.
Graph BuildRandomWan(const RandomWanOptions& opts);

}  // namespace lcmp
