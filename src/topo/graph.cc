#include "topo/graph.h"

#include <algorithm>

#include "common/logging.h"

namespace lcmp {

NodeId Graph::AddVertex(VertexKind kind, DcId dc, std::string name) {
  const NodeId id = static_cast<NodeId>(vertices_.size());
  vertices_.push_back(Vertex{kind, dc, std::move(name)});
  num_dcs_ = std::max(num_dcs_, dc + 1);
  if (static_cast<size_t>(num_dcs_) > dci_of_dc_.size()) {
    dci_of_dc_.resize(static_cast<size_t>(num_dcs_), kInvalidNode);
  }
  if (kind == VertexKind::kDciSwitch && dc >= 0 &&
      dci_of_dc_[static_cast<size_t>(dc)] == kInvalidNode) {
    dci_of_dc_[static_cast<size_t>(dc)] = id;
  }
  csr_valid_ = false;
  return id;
}

int Graph::AddLink(NodeId a, NodeId b, int64_t rate_bps, TimeNs delay_ns, int64_t buffer_bytes) {
  LCMP_CHECK(a >= 0 && a < num_vertices());
  LCMP_CHECK(b >= 0 && b < num_vertices());
  LCMP_CHECK(a != b);
  LCMP_CHECK(rate_bps > 0);
  LCMP_CHECK(delay_ns >= 0);
  const int idx = static_cast<int>(links_.size());
  links_.push_back(LinkSpec{a, b, rate_bps, delay_ns, buffer_bytes});
  csr_valid_ = false;
  return idx;
}

void Graph::SetLinkRate(int idx, int64_t rate_bps) {
  LCMP_CHECK(idx >= 0 && idx < num_links());
  LCMP_CHECK(rate_bps > 0);
  links_[static_cast<size_t>(idx)].rate_bps = rate_bps;
}

void Graph::EnsureCsr() const {
  if (csr_valid_) {
    return;
  }
  const size_t n = vertices_.size();
  // Two-pass counting sort over links_ in index order: per-vertex incidence
  // lists come out in AddLink order, exactly like the old push_back vectors.
  csr_offsets_.assign(n + 1, 0);
  for (const LinkSpec& l : links_) {
    ++csr_offsets_[static_cast<size_t>(l.a) + 1];
    ++csr_offsets_[static_cast<size_t>(l.b) + 1];
  }
  for (size_t v = 0; v < n; ++v) {
    csr_offsets_[v + 1] += csr_offsets_[v];
  }
  csr_links_.resize(links_.size() * 2);
  std::vector<int32_t> cursor(csr_offsets_.begin(), csr_offsets_.end() - 1);
  for (size_t li = 0; li < links_.size(); ++li) {
    const LinkSpec& l = links_[li];
    csr_links_[static_cast<size_t>(cursor[static_cast<size_t>(l.a)]++)] = static_cast<int32_t>(li);
    csr_links_[static_cast<size_t>(cursor[static_cast<size_t>(l.b)]++)] = static_cast<int32_t>(li);
  }
  csr_valid_ = true;
}

NodeId Graph::Peer(int link_idx, NodeId id) const {
  const LinkSpec& l = links_[static_cast<size_t>(link_idx)];
  LCMP_CHECK(l.a == id || l.b == id);
  return l.a == id ? l.b : l.a;
}

std::vector<NodeId> Graph::HostsInDc(DcId dc) const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < num_vertices(); ++id) {
    const Vertex& v = vertex(id);
    if (v.dc == dc && v.kind == VertexKind::kHost) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<NodeId> Graph::DciSwitches() const {
  std::vector<NodeId> out;
  for (DcId dc = 0; dc < num_dcs_; ++dc) {
    const NodeId dci = DciOfDc(dc);
    if (dci != kInvalidNode) {
      out.push_back(dci);
    }
  }
  return out;
}

size_t Graph::MemoryBytes() const {
  EnsureCsr();
  size_t bytes = vertices_.capacity() * sizeof(Vertex) + links_.capacity() * sizeof(LinkSpec) +
                 dci_of_dc_.capacity() * sizeof(NodeId) +
                 csr_offsets_.capacity() * sizeof(int32_t) +
                 csr_links_.capacity() * sizeof(int32_t);
  for (const Vertex& v : vertices_) {
    // Count only heap-spilled names; SSO names live inside the Vertex.
    if (v.name.capacity() > sizeof(std::string)) {
      bytes += v.name.capacity();
    }
  }
  return bytes;
}

}  // namespace lcmp
