#include "topo/graph.h"

#include <algorithm>

#include "common/logging.h"

namespace lcmp {

NodeId Graph::AddVertex(VertexKind kind, DcId dc, std::string name) {
  const NodeId id = static_cast<NodeId>(vertices_.size());
  vertices_.push_back(Vertex{kind, dc, std::move(name)});
  incident_.emplace_back();
  num_dcs_ = std::max(num_dcs_, dc + 1);
  return id;
}

int Graph::AddLink(NodeId a, NodeId b, int64_t rate_bps, TimeNs delay_ns, int64_t buffer_bytes) {
  LCMP_CHECK(a >= 0 && a < num_vertices());
  LCMP_CHECK(b >= 0 && b < num_vertices());
  LCMP_CHECK(a != b);
  LCMP_CHECK(rate_bps > 0);
  LCMP_CHECK(delay_ns >= 0);
  const int idx = static_cast<int>(links_.size());
  links_.push_back(LinkSpec{a, b, rate_bps, delay_ns, buffer_bytes});
  incident_[static_cast<size_t>(a)].push_back(idx);
  incident_[static_cast<size_t>(b)].push_back(idx);
  return idx;
}

NodeId Graph::Peer(int link_idx, NodeId id) const {
  const LinkSpec& l = links_[static_cast<size_t>(link_idx)];
  LCMP_CHECK(l.a == id || l.b == id);
  return l.a == id ? l.b : l.a;
}

std::vector<NodeId> Graph::HostsInDc(DcId dc) const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < num_vertices(); ++id) {
    const Vertex& v = vertex(id);
    if (v.dc == dc && v.kind == VertexKind::kHost) {
      out.push_back(id);
    }
  }
  return out;
}

NodeId Graph::DciOfDc(DcId dc) const {
  for (NodeId id = 0; id < num_vertices(); ++id) {
    const Vertex& v = vertex(id);
    if (v.dc == dc && v.kind == VertexKind::kDciSwitch) {
      return id;
    }
  }
  return kInvalidNode;
}

std::vector<NodeId> Graph::DciSwitches() const {
  std::vector<NodeId> out;
  for (DcId dc = 0; dc < num_dcs_; ++dc) {
    const NodeId dci = DciOfDc(dc);
    if (dci != kInvalidNode) {
      out.push_back(dci);
    }
  }
  return out;
}

}  // namespace lcmp
