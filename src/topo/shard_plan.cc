#include "topo/shard_plan.h"

#include <limits>

#include "common/logging.h"

namespace lcmp {

ShardPlan BuildShardPlan(const Graph& graph, int shards) {
  ShardPlan plan;
  const int num_dcs = graph.num_dcs();
  LCMP_CHECK(num_dcs > 0);
  plan.num_shards = shards < 1 ? 1 : (shards > num_dcs ? num_dcs : shards);
  plan.shard_of_dc.resize(static_cast<size_t>(num_dcs));
  for (int dc = 0; dc < num_dcs; ++dc) {
    // Contiguous blocks, balanced to within one DC.
    plan.shard_of_dc[static_cast<size_t>(dc)] =
        static_cast<int>(static_cast<int64_t>(dc) * plan.num_shards / num_dcs);
  }

  // Sentinel far below overflow range even after adding a horizon-scale time.
  plan.lookahead_ns = std::numeric_limits<TimeNs>::max() / 4;
  for (const LinkSpec& link : graph.links()) {
    const DcId dc_a = graph.vertex(link.a).dc;
    const DcId dc_b = graph.vertex(link.b).dc;
    if (plan.shard_of_dc[static_cast<size_t>(dc_a)] ==
        plan.shard_of_dc[static_cast<size_t>(dc_b)]) {
      continue;
    }
    // Conservative synchronization needs strictly positive lookahead; the
    // topology layer never emits zero-delay inter-DC fiber.
    LCMP_CHECK(link.delay_ns > 0);
    if (link.delay_ns < plan.lookahead_ns) {
      plan.lookahead_ns = link.delay_ns;
    }
  }
  return plan;
}

}  // namespace lcmp
