// Control-plane route computation over the inter-DC graph.
//
// For every (DCI switch, destination DC) pair we precompute the set of
// loop-free candidate next hops together with the residual path attributes
// LCMP's C_path needs: the best one-way propagation delay from this hop to
// the destination and the bottleneck capacity along that best-delay route.
//
// Loop freedom comes from "downhill" routing: a neighbor is a candidate only
// if it is strictly closer (in hops) to the destination DC. On the paper's
// topologies this yields exactly the candidate routes discussed in Fig. 1.
#pragma once

#include <unordered_map>
#include <vector>

#include "topo/graph.h"

namespace lcmp {

// One candidate next hop at a DCI switch toward a destination DC.
struct RouteCandidate {
  NodeId next_hop = kInvalidNode;  // neighboring DCI switch
  int link_idx = -1;               // graph link used for the first hop
  TimeNs path_delay_ns = 0;        // first-hop delay + best residual delay
  int64_t bottleneck_bps = 0;      // bottleneck along that best-delay route
};

// Delay/bottleneck of the minimum-propagation-delay path between two nodes
// over the full graph (used for ideal-FCT computation).
struct PathMetric {
  TimeNs delay_ns = 0;
  int64_t bottleneck_bps = 0;
  int hops = 0;
  bool reachable = false;
};

class InterDcRoutes {
 public:
  // Derives candidate sets from the inter-DC sub-graph of `g` (links whose
  // endpoints are both DCI switches).
  static InterDcRoutes Compute(const Graph& g);

  // Candidate next hops at `dci` toward `dst_dc` (empty when unreachable or
  // when dci already sits in dst_dc).
  const std::vector<RouteCandidate>& Candidates(NodeId dci, DcId dst_dc) const;

  // Hop distance from `dci` to `dst_dc` over the inter-DC graph; -1 if
  // unreachable.
  int HopDistance(NodeId dci, DcId dst_dc) const;

  // Fraction of ordered DC pairs whose source DCI has >= 2 candidates
  // (the paper quotes 20/78 unordered pairs for the 13-DC topology).
  double MultipathPairFraction() const;

  int num_dcs() const { return num_dcs_; }

 private:
  int num_dcs_ = 0;
  std::vector<NodeId> dci_of_dc_;
  // candidates_[dc_of(dci)][dst_dc]; DCIs are unique per DC so indexing by
  // the switch's DC is unambiguous.
  std::vector<std::vector<std::vector<RouteCandidate>>> candidates_;
  std::vector<std::vector<int>> hop_dist_;  // [src_dc][dst_dc]
};

// Minimum-propagation-delay path metric between two vertices over the full
// graph (Dijkstra on delay; ties broken toward higher bottleneck capacity).
PathMetric ComputeMinDelayPath(const Graph& g, NodeId src, NodeId dst);

// Memoizing wrapper around ComputeMinDelayPath. Both the transport (base
// RTT) and the FCT recorder (ideal FCT) consult it, so results are cached
// per ordered host pair.
class PathOracle {
 public:
  explicit PathOracle(const Graph* g) : graph_(g) {}

  // Cached minimum-delay path metric from src to dst.
  const PathMetric& Metric(NodeId src, NodeId dst);

 private:
  const Graph* graph_;
  std::unordered_map<uint64_t, PathMetric> cache_;
};

}  // namespace lcmp
