// Control-plane route computation over the inter-DC graph.
//
// For every (DCI switch, destination DC) pair we precompute the set of
// loop-free candidate next hops together with the residual path attributes
// LCMP's C_path needs: the best one-way propagation delay from this hop to
// the destination and the bottleneck capacity along that best-delay route.
//
// Loop freedom comes from "downhill" routing: a neighbor is a candidate only
// if it is strictly closer (in hops) to the destination DC. On the paper's
// topologies this yields exactly the candidate routes discussed in Fig. 1.
//
// Two strategies are supported:
//  - kDownhill: the single minimal candidate set above (the default).
//  - kLayered: FatPaths-style layered non-minimal path sets. Layer 0 is the
//    minimal downhill set; each additional layer recomputes downhill routing
//    on a seeded random subgraph of the inter-DC links, so its "minimal"
//    routes detour around the dropped links and expose non-minimal diversity.
//    A flow is pinned to one layer end-to-end (the data plane hashes the flow
//    key without any per-switch salt), and every hop within a layer is
//    strictly downhill in that layer's own distance function, so mixed-layer
//    forwarding stays loop-free: a flow whose layer has no candidates at some
//    switch falls back to layer 0 there, and layer 0 is total.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "topo/graph.h"

namespace lcmp {

// One candidate next hop at a DCI switch toward a destination DC.
struct RouteCandidate {
  NodeId next_hop = kInvalidNode;  // neighboring DCI switch
  int link_idx = -1;               // graph link used for the first hop
  TimeNs path_delay_ns = 0;        // first-hop delay + best residual delay
  int64_t bottleneck_bps = 0;      // bottleneck along that best-delay route
};

// Candidate-set strategy (see file comment).
enum class PathStrategyKind : uint8_t {
  kDownhill,  // minimal downhill candidates only (single layer)
  kLayered,   // FatPaths-style layered non-minimal path sets
};

// Options for InterDcRoutes::Compute. The defaults reproduce the historical
// single-layer behavior bit-for-bit.
struct CandidatePathOptions {
  PathStrategyKind strategy = PathStrategyKind::kDownhill;
  // Total layers including the minimal layer 0 (kLayered only; >= 1).
  int layers = 4;
  // Probability (in 1/1000) that an inter-DC link is dropped from the
  // subgraph of each non-minimal layer.
  int drop_permille = 250;
  // Seed for the per-layer subgraph sampling; independent of the workload
  // seed so topology routing is stable across traffic variations.
  uint64_t seed = 1;
};

// Delay/bottleneck of the minimum-propagation-delay path between two nodes
// over the full graph (used for ideal-FCT computation).
struct PathMetric {
  TimeNs delay_ns = 0;
  int64_t bottleneck_bps = 0;
  int hops = 0;
  bool reachable = false;
};

class InterDcRoutes {
 public:
  // Derives candidate sets from the inter-DC sub-graph of `g` (links whose
  // endpoints are both DCI switches).
  static InterDcRoutes Compute(const Graph& g);
  static InterDcRoutes Compute(const Graph& g, const CandidatePathOptions& opts);

  // Candidate next hops at `dci` toward `dst_dc` in layer 0 (empty when
  // unreachable or when dci already sits in dst_dc).
  const std::vector<RouteCandidate>& Candidates(NodeId dci, DcId dst_dc) const;

  // Candidate next hops in `layer` (0 == Candidates()). Layers >= 1 may be
  // empty even for reachable pairs when the layer's subgraph disconnects
  // them; callers fall back to layer 0.
  const std::vector<RouteCandidate>& CandidatesInLayer(NodeId dci, DcId dst_dc, int layer) const;

  // Number of layers computed (1 for kDownhill).
  int num_layers() const { return 1 + static_cast<int>(extra_layers_.size()); }

  // Hop distance from `dci` to `dst_dc` over the inter-DC graph; -1 if
  // unreachable.
  int HopDistance(NodeId dci, DcId dst_dc) const;

  // Fraction of ordered DC pairs whose source DCI has >= 2 candidates
  // (the paper quotes 20/78 unordered pairs for the 13-DC topology).
  double MultipathPairFraction() const;

  int num_dcs() const { return num_dcs_; }

 private:
  // DC of `dci` via the O(1) reverse index; kInvalidDc if not a known DCI.
  DcId DcOfDci(NodeId dci) const;

  int num_dcs_ = 0;
  std::vector<NodeId> dci_of_dc_;
  std::vector<DcId> dc_of_node_;  // [node] -> DC if a known DCI, else kInvalidDc
  // candidates_[dc_of(dci)][dst_dc]; DCIs are unique per DC so indexing by
  // the switch's DC is unambiguous. This is layer 0.
  std::vector<std::vector<std::vector<RouteCandidate>>> candidates_;
  // extra_layers_[l - 1][src_dc][dst_dc] for layers l >= 1.
  std::vector<std::vector<std::vector<std::vector<RouteCandidate>>>> extra_layers_;
  std::vector<std::vector<int>> hop_dist_;  // [src_dc][dst_dc]
};

// Minimum-propagation-delay path metric between two vertices over the full
// graph (Dijkstra on delay; ties broken toward higher bottleneck capacity).
PathMetric ComputeMinDelayPath(const Graph& g, NodeId src, NodeId dst);

// Memoizing wrapper around ComputeMinDelayPath. Both the transport (base
// RTT) and the FCT recorder (ideal FCT) consult it, so results are cached
// per ordered host pair.
class PathOracle {
 public:
  explicit PathOracle(const Graph* g) : graph_(g) {}

  // Cached minimum-delay path metric from src to dst.
  const PathMetric& Metric(NodeId src, NodeId dst);

 private:
  const Graph* graph_;
  std::unordered_map<uint64_t, PathMetric> cache_;
};

}  // namespace lcmp
