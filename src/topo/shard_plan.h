// Partition assignment + lookahead derivation for the sharded event core
// (conservative PDES, DESIGN.md §12).
//
// Datacenters are atomic: every vertex of a DC is homed on one shard, so the
// only cross-shard links are inter-DC (DCI-to-DCI) fiber. The lookahead is
// the minimum one-way propagation delay over links whose endpoint DCs land on
// different shards — long-haul WAN delays are milliseconds, which is an
// enormous window compared to the microsecond intra-DC event density.
#pragma once

#include <vector>

#include "common/types.h"
#include "topo/graph.h"

namespace lcmp {

struct ShardPlan {
  int num_shards = 1;
  std::vector<int> shard_of_dc;  // indexed by DcId
  // Minimum propagation delay of any cross-shard link; every cross-shard
  // handoff arrives at least this far in the future, so a shard at time T may
  // safely execute up to (exclusive) T + lookahead_ns without hearing from
  // its neighbors. Huge sentinel when no link crosses shards.
  TimeNs lookahead_ns = 0;
};

// Assigns DCs to min(shards, num_dcs) contiguous shard blocks. Contiguity
// keeps topologically adjacent DCs (which tend to have the shortest fiber
// between them) co-located, maximizing the min-cut lookahead.
ShardPlan BuildShardPlan(const Graph& graph, int shards);

}  // namespace lcmp
