#include "topo/gen/topo_stats.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <queue>
#include <sstream>
#include <vector>

#include "common/hashing.h"
#include "common/rng.h"

namespace lcmp {
namespace {

bool IsInterDcLink(const Graph& g, const LinkSpec& l) {
  return g.vertex(l.a).kind == VertexKind::kDciSwitch &&
         g.vertex(l.b).kind == VertexKind::kDciSwitch && g.vertex(l.a).dc != g.vertex(l.b).dc;
}

uint64_t Fold(uint64_t h, uint64_t v) { return Mix64(h ^ (v + 0x9e3779b97f4a7c15ULL)); }

}  // namespace

TopoStats ComputeTopoStats(const Graph& g, uint64_t seed, int bisection_trials) {
  TopoStats s;
  s.vertices = g.num_vertices();
  s.links = g.num_links();
  s.dcs = g.num_dcs();
  for (const Vertex& v : g.vertices()) {
    if (v.kind == VertexKind::kHost) {
      ++s.hosts;
    } else {
      ++s.switches;
      if (v.kind == VertexKind::kDciSwitch) {
        ++s.dci_switches;
      }
    }
  }

  // Inter-DC adjacency over the DCI graph, indexed by DC.
  std::vector<std::vector<DcId>> adj(static_cast<size_t>(g.num_dcs()));
  for (int li = 0; li < g.num_links(); ++li) {
    const LinkSpec& l = g.link(li);
    if (!IsInterDcLink(g, l)) {
      continue;
    }
    ++s.inter_dc_links;
    s.inter_dc_capacity_bps += l.rate_bps;
    adj[static_cast<size_t>(g.vertex(l.a).dc)].push_back(g.vertex(l.b).dc);
    adj[static_cast<size_t>(g.vertex(l.b).dc)].push_back(g.vertex(l.a).dc);
  }
  std::vector<DcId> dci_dcs;
  for (DcId dc = 0; dc < g.num_dcs(); ++dc) {
    if (g.DciOfDc(dc) != kInvalidNode) {
      dci_dcs.push_back(dc);
    }
  }
  s.avg_dci_degree = dci_dcs.empty()
                         ? 0.0
                         : 2.0 * s.inter_dc_links / static_cast<double>(dci_dcs.size());

  // BFS from every DCI's DC: connectivity + eccentricity -> diameter.
  s.connected = !dci_dcs.empty();
  std::vector<int> dist(static_cast<size_t>(g.num_dcs()));
  for (const DcId src : dci_dcs) {
    std::fill(dist.begin(), dist.end(), -1);
    std::queue<DcId> q;
    dist[static_cast<size_t>(src)] = 0;
    q.push(src);
    int ecc = 0;
    while (!q.empty()) {
      const DcId u = q.front();
      q.pop();
      for (const DcId v : adj[static_cast<size_t>(u)]) {
        if (dist[static_cast<size_t>(v)] < 0) {
          dist[static_cast<size_t>(v)] = dist[static_cast<size_t>(u)] + 1;
          ecc = std::max(ecc, dist[static_cast<size_t>(v)]);
          q.push(v);
        }
      }
    }
    for (const DcId other : dci_dcs) {
      if (dist[static_cast<size_t>(other)] < 0) {
        s.connected = false;
      }
    }
    s.diameter = std::max(s.diameter, ecc);
  }
  if (!s.connected) {
    s.diameter = -1;
  }

  // Bisection estimate: random balanced DC bipartitions (Fisher-Yates over
  // the DCI-bearing DCs), minimum crossing capacity over the trials.
  if (dci_dcs.size() >= 2 && bisection_trials > 0) {
    Rng rng(Mix64(seed ^ 0xb15ec7ed0ULL));
    std::vector<DcId> perm = dci_dcs;
    int64_t best = std::numeric_limits<int64_t>::max();
    std::vector<char> in_half(static_cast<size_t>(g.num_dcs()), 0);
    for (int t = 0; t < bisection_trials; ++t) {
      for (size_t i = perm.size() - 1; i > 0; --i) {
        std::swap(perm[i], perm[rng.NextBounded(i + 1)]);
      }
      std::fill(in_half.begin(), in_half.end(), 0);
      for (size_t i = 0; i < perm.size() / 2; ++i) {
        in_half[static_cast<size_t>(perm[i])] = 1;
      }
      int64_t cross = 0;
      for (int li = 0; li < g.num_links(); ++li) {
        const LinkSpec& l = g.link(li);
        if (IsInterDcLink(g, l) && in_half[static_cast<size_t>(g.vertex(l.a).dc)] !=
                                       in_half[static_cast<size_t>(g.vertex(l.b).dc)]) {
          cross += l.rate_bps;
        }
      }
      best = std::min(best, cross);
    }
    s.bisection_bps = best;
  }
  return s;
}

uint64_t StructuralDigest(const Graph& g) {
  uint64_t h = 0x10905ca1d16e57ULL;
  h = Fold(h, static_cast<uint64_t>(g.num_vertices()));
  h = Fold(h, static_cast<uint64_t>(g.num_links()));
  h = Fold(h, static_cast<uint64_t>(g.num_dcs()));
  for (const Vertex& v : g.vertices()) {
    h = Fold(h, static_cast<uint64_t>(v.kind));
    h = Fold(h, static_cast<uint64_t>(static_cast<int64_t>(v.dc)));
  }
  for (const LinkSpec& l : g.links()) {
    h = Fold(h, static_cast<uint64_t>(static_cast<int64_t>(l.a)));
    h = Fold(h, static_cast<uint64_t>(static_cast<int64_t>(l.b)));
    h = Fold(h, static_cast<uint64_t>(l.rate_bps));
    h = Fold(h, static_cast<uint64_t>(l.delay_ns));
    h = Fold(h, static_cast<uint64_t>(l.buffer_bytes));
  }
  return h;
}

std::string TopoToDot(const Graph& g) {
  std::ostringstream out;
  out << "graph wan {\n  overlap=false;\n  node [shape=box];\n";
  for (DcId dc = 0; dc < g.num_dcs(); ++dc) {
    const NodeId dci = g.DciOfDc(dc);
    if (dci == kInvalidNode) {
      continue;
    }
    const int hosts = static_cast<int>(g.HostsInDc(dc).size());
    out << "  dc" << dc << " [label=\"" << g.vertex(dci).name << "\\n" << hosts << " hosts\"];\n";
  }
  for (int li = 0; li < g.num_links(); ++li) {
    const LinkSpec& l = g.link(li);
    if (!IsInterDcLink(g, l)) {
      continue;
    }
    out << "  dc" << g.vertex(l.a).dc << " -- dc" << g.vertex(l.b).dc << " [label=\""
        << l.rate_bps / 1'000'000'000 << "G/" << l.delay_ns / kNsPerMs << "ms\"];\n";
  }
  out << "}\n";
  return out.str();
}

std::string TopoToJson(const Graph& g, const TopoStats& stats) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"vertices\": " << stats.vertices << ",\n";
  out << "  \"links\": " << stats.links << ",\n";
  out << "  \"dcs\": " << stats.dcs << ",\n";
  out << "  \"hosts\": " << stats.hosts << ",\n";
  out << "  \"switches\": " << stats.switches << ",\n";
  out << "  \"dci_switches\": " << stats.dci_switches << ",\n";
  out << "  \"inter_dc_links\": " << stats.inter_dc_links << ",\n";
  out << "  \"connected\": " << (stats.connected ? "true" : "false") << ",\n";
  out << "  \"diameter\": " << stats.diameter << ",\n";
  out << "  \"avg_dci_degree\": " << stats.avg_dci_degree << ",\n";
  out << "  \"bisection_bps\": " << stats.bisection_bps << ",\n";
  out << "  \"inter_dc_capacity_bps\": " << stats.inter_dc_capacity_bps << ",\n";
  char digest[32];
  std::snprintf(digest, sizeof(digest), "%016llx",
                static_cast<unsigned long long>(StructuralDigest(g)));
  out << "  \"structural_digest\": \"" << digest << "\",\n";
  out << "  \"inter_dc\": [\n";
  bool first = true;
  for (int li = 0; li < g.num_links(); ++li) {
    const LinkSpec& l = g.link(li);
    if (!IsInterDcLink(g, l)) {
      continue;
    }
    if (!first) {
      out << ",\n";
    }
    first = false;
    out << "    {\"a\": " << g.vertex(l.a).dc << ", \"b\": " << g.vertex(l.b).dc
        << ", \"rate_bps\": " << l.rate_bps << ", \"delay_ns\": " << l.delay_ns << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

}  // namespace lcmp
