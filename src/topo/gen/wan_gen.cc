#include "topo/gen/wan_gen.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace lcmp {
namespace {

// Link attribute classes shared by all generated WAN families (the same
// classes BuildRandomWan and BuildBso13 use).
struct LinkClassDraw {
  Rng* rng;
  int64_t Rate() {
    static constexpr int64_t kRates[] = {Gbps(40), Gbps(100), Gbps(200)};
    return kRates[rng->NextBounded(3)];
  }
  TimeNs RegionalDelay() { return Milliseconds(1); }
  TimeNs LongHaulDelay() {
    static constexpr TimeNs kDelays[] = {Milliseconds(5), Milliseconds(10)};
    return kDelays[rng->NextBounded(2)];
  }
};

bool IsPrime(int n) {
  if (n < 2) {
    return false;
  }
  for (int d = 2; d * d <= n; ++d) {
    if (n % d == 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

Graph BuildDragonflyWan(const DragonflyWanOptions& opts) {
  LCMP_CHECK(opts.num_dcs >= 2);
  LCMP_CHECK(opts.global_links_per_dc >= 1);
  const int n = opts.num_dcs;
  int a = opts.group_size;
  if (a <= 0) {
    a = std::max(2, static_cast<int>(std::lround(std::sqrt(n / 2.0))));
  }
  a = std::min(a, n);
  const int num_groups = (n + a - 1) / a;

  Graph g;
  std::vector<NodeId> dci(static_cast<size_t>(n), kInvalidNode);
  std::vector<std::vector<DcId>> group_members(static_cast<size_t>(num_groups));
  for (DcId dc = 0; dc < n; ++dc) {
    dci[static_cast<size_t>(dc)] = BuildDcFabric(g, dc, opts.fabric);
    group_members[static_cast<size_t>(dc / a)].push_back(dc);
  }

  Rng rng = TopoRng(opts.seed);
  LinkClassDraw draw{&rng};

  // Intra-group full mesh (regional distances).
  for (const std::vector<DcId>& members : group_members) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        g.AddLink(dci[static_cast<size_t>(members[i])], dci[static_cast<size_t>(members[j])],
                  draw.Rate(), draw.RegionalDelay(), opts.inter_dc_buffer_bytes);
      }
    }
  }

  if (num_groups == 1) {
    return g;
  }

  // Global links. Each group owns a port budget of |members| * h; endpoints
  // rotate over the group's members so global links spread across DCs.
  std::vector<int> ports_left(static_cast<size_t>(num_groups));
  std::vector<int> next_member(static_cast<size_t>(num_groups), 0);
  for (int gi = 0; gi < num_groups; ++gi) {
    ports_left[static_cast<size_t>(gi)] =
        static_cast<int>(group_members[static_cast<size_t>(gi)].size()) * opts.global_links_per_dc;
  }
  auto take_endpoint = [&](int gi) {
    const std::vector<DcId>& members = group_members[static_cast<size_t>(gi)];
    const DcId dc = members[static_cast<size_t>(next_member[static_cast<size_t>(gi)]) %
                            members.size()];
    ++next_member[static_cast<size_t>(gi)];
    --ports_left[static_cast<size_t>(gi)];
    return dci[static_cast<size_t>(dc)];
  };
  auto add_global = [&](int gi, int gj) {
    g.AddLink(take_endpoint(gi), take_endpoint(gj), draw.Rate(), draw.LongHaulDelay(),
              opts.inter_dc_buffer_bytes);
  };

  // Connectivity ring over groups first (guarantees a connected WAN even
  // when the port budget cannot cover every group pair).
  for (int gi = 0; gi < num_groups; ++gi) {
    const int gj = (gi + 1) % num_groups;
    if (num_groups == 2 && gi == 1) {
      break;  // the pair (0,1) is already linked
    }
    add_global(gi, gj);
  }
  // Remaining group pairs in canonical order (ring distance, then index),
  // while both sides still have ports. With the auto group shape the budget
  // covers all pairs, giving a group-graph diameter of 1 (DC diameter <= 3).
  for (int d = 2; d <= num_groups / 2; ++d) {
    for (int gi = 0; gi < num_groups; ++gi) {
      // At ring distance d < g/2 each unordered pair {gi, gi+d} appears once
      // in this scan (wraparound included); antipodal pairs (2d == g) appear
      // twice, so keep only the first half.
      if (d * 2 == num_groups && gi >= num_groups / 2) {
        continue;
      }
      const int gj = (gi + d) % num_groups;
      if (ports_left[static_cast<size_t>(gi)] > 0 && ports_left[static_cast<size_t>(gj)] > 0) {
        add_global(gi, gj);
      }
    }
  }
  return g;
}

int SlimFlyQForDcCount(int min_dcs) {
  LCMP_CHECK(min_dcs >= 2);
  for (int q = 5;; q += 4) {
    // q ≡ 1 (mod 4): -1 is a quadratic residue, so the residue/non-residue
    // generator sets are symmetric and the MMS edges are well-defined
    // undirected.
    if (IsPrime(q) && 2 * q * q >= min_dcs) {
      return q;
    }
  }
}

int SlimFlyDcCount(int min_dcs) {
  const int q = SlimFlyQForDcCount(min_dcs);
  return 2 * q * q;
}

Graph BuildSlimFlyWan(const SlimFlyWanOptions& opts) {
  const int q = SlimFlyQForDcCount(opts.num_dcs);
  const int n = 2 * q * q;

  // Quadratic residues mod q (block-0 generator set X) and non-residues
  // (block-1 set X').
  std::vector<bool> is_residue(static_cast<size_t>(q), false);
  for (int v = 1; v < q; ++v) {
    is_residue[static_cast<size_t>((v * v) % q)] = true;
  }

  Graph g;
  std::vector<NodeId> dci(static_cast<size_t>(n), kInvalidNode);
  for (DcId dc = 0; dc < n; ++dc) {
    dci[static_cast<size_t>(dc)] = BuildDcFabric(g, dc, opts.fabric);
  }
  Rng rng = TopoRng(opts.seed);
  LinkClassDraw draw{&rng};
  auto add = [&](int dc_a, int dc_b) {
    g.AddLink(dci[static_cast<size_t>(dc_a)], dci[static_cast<size_t>(dc_b)], draw.Rate(),
              draw.LongHaulDelay(), opts.inter_dc_buffer_bytes);
  };
  // DC index layout: block 0 vertex (x, y) -> x*q + y; block 1 vertex
  // (m, c) -> q² + m*q + c.
  // Block-0 rows: (x, y) ~ (x, y') iff y - y' is a residue.
  for (int x = 0; x < q; ++x) {
    for (int y = 0; y < q; ++y) {
      for (int y2 = y + 1; y2 < q; ++y2) {
        if (is_residue[static_cast<size_t>((y2 - y) % q)]) {
          add(x * q + y, x * q + y2);
        }
      }
    }
  }
  // Block-1 rows: (m, c) ~ (m, c') iff c - c' is a non-residue.
  for (int m = 0; m < q; ++m) {
    for (int c = 0; c < q; ++c) {
      for (int c2 = c + 1; c2 < q; ++c2) {
        if (!is_residue[static_cast<size_t>((c2 - c) % q)]) {
          add(q * q + m * q + c, q * q + m * q + c2);
        }
      }
    }
  }
  // Cross edges: (x, y) ~ (m, c) iff y = m*x + c (mod q).
  for (int m = 0; m < q; ++m) {
    for (int c = 0; c < q; ++c) {
      for (int x = 0; x < q; ++x) {
        const int y = (m * x + c) % q;
        add(x * q + y, q * q + m * q + c);
      }
    }
  }
  return g;
}

int FatTreeKForDcCount(int min_dcs) {
  LCMP_CHECK(min_dcs >= 2);
  for (int k = 2;; k += 2) {
    if (5 * k * k / 4 >= min_dcs) {
      return k;
    }
  }
}

int FatTreeDcCount(int min_dcs) {
  const int k = FatTreeKForDcCount(min_dcs);
  return 5 * k * k / 4;
}

Graph BuildFatTreeWan(const FatTreeWanOptions& opts) {
  const int k = FatTreeKForDcCount(opts.num_dcs);
  const int half = k / 2;
  const int num_edge = k * half;   // server DCs, ids [0, k²/2)
  const int num_agg = k * half;    // transit, ids [k²/2, k²)
  const int num_core = half * half;  // transit, ids [k², (5/4)k²)

  Graph g;
  FabricOptions transit = opts.fabric;
  transit.hosts = 0;
  transit.kind = FabricKind::kCollapsed;
  std::vector<NodeId> dci(static_cast<size_t>(num_edge + num_agg + num_core), kInvalidNode);
  for (DcId dc = 0; dc < num_edge + num_agg + num_core; ++dc) {
    dci[static_cast<size_t>(dc)] = BuildDcFabric(g, dc, dc < num_edge ? opts.fabric : transit);
  }

  Rng rng = TopoRng(opts.seed);
  LinkClassDraw draw{&rng};
  const auto edge_dc = [&](int pod, int i) { return pod * half + i; };
  const auto agg_dc = [&](int pod, int j) { return num_edge + pod * half + j; };
  const auto core_dc = [&](int j, int c) { return num_edge + num_agg + j * half + c; };

  for (int pod = 0; pod < k; ++pod) {
    // Edge <-> aggregation: full bipartite mesh within the pod (regional).
    for (int i = 0; i < half; ++i) {
      for (int j = 0; j < half; ++j) {
        g.AddLink(dci[static_cast<size_t>(edge_dc(pod, i))],
                  dci[static_cast<size_t>(agg_dc(pod, j))], draw.Rate(), draw.RegionalDelay(),
                  opts.inter_dc_buffer_bytes);
      }
    }
    // Aggregation j of every pod reaches core group j (long haul).
    for (int j = 0; j < half; ++j) {
      for (int c = 0; c < half; ++c) {
        g.AddLink(dci[static_cast<size_t>(agg_dc(pod, j))],
                  dci[static_cast<size_t>(core_dc(j, c))], draw.Rate(), draw.LongHaulDelay(),
                  opts.inter_dc_buffer_bytes);
      }
    }
  }
  return g;
}

}  // namespace lcmp
