// Structural analysis of a topology: summary statistics for the lcmp_topo
// CLI, a structural digest for golden pinning, and DOT/JSON exports.
#pragma once

#include <cstdint>
#include <string>

#include "topo/graph.h"

namespace lcmp {

struct TopoStats {
  int vertices = 0;
  int links = 0;
  int dcs = 0;
  int hosts = 0;
  int switches = 0;       // non-host vertices
  int dci_switches = 0;
  int inter_dc_links = 0;  // DCI<->DCI links crossing a DC boundary
  bool connected = false;  // all DCIs mutually reachable over inter-DC links
  int diameter = -1;       // inter-DC hop diameter over the DCI graph
  double avg_dci_degree = 0;   // mean inter-DC links per DCI
  int64_t bisection_bps = 0;   // seeded random balanced-cut estimate (min of trials)
  int64_t inter_dc_capacity_bps = 0;  // sum of inter-DC link rates (one direction)
};

// Computes the stats above. The bisection estimate takes the minimum
// crossing capacity over `bisection_trials` seeded random balanced DC
// bipartitions — an upper bound on the true bisection width, deterministic
// per seed.
TopoStats ComputeTopoStats(const Graph& g, uint64_t seed = 1, int bisection_trials = 16);

// Order-sensitive structural digest over vertices (kind, dc) and links
// (endpoints, rate, delay, buffer). Names are excluded: the digest pins the
// simulated structure, not cosmetic labels. Identical graphs => identical
// digests on every platform.
uint64_t StructuralDigest(const Graph& g);

// Graphviz DOT of the inter-DC (DCI-level) graph; link labels carry
// rate/delay.
std::string TopoToDot(const Graph& g);

// JSON object with the stats plus the per-link inter-DC list.
std::string TopoToJson(const Graph& g, const TopoStats& stats);

}  // namespace lcmp
