// Parameterized extreme-scale WAN generators (topo/gen/ subsystem).
//
// Each generator builds a WAN of datacenters: one fabric per DC (via
// BuildDcFabric) plus an inter-DC graph drawn from a classic low-diameter
// interconnect family, scaled from router radixes to DC counts:
//
//  - Dragonfly-of-DCs: DCs grouped into fully-meshed groups; groups joined
//    by global links budgeted per DC. Exact DC count, diameter <= 3 when
//    every group pair gets a direct global link.
//  - Slim-fly-of-DCs: the McKay–Miller–Širáň construction over F_q for a
//    prime q ≡ 1 (mod 4); 2q² DCs, uniform inter-DC degree (3q-1)/2,
//    diameter 2. The requested DC count rounds UP to the next valid 2q².
//  - Fat-tree-of-DCs: k-ary three-stage Clos; k²/2 server DCs (edge stage)
//    plus k²/2 + k²/4 transit DCs (aggregation + core). Rounds up to the
//    next even k.
//
// All randomness (link rate/delay classes) comes from the dedicated TopoRng
// stream, so a generated topology is a pure function of its options —
// bit-identical across runs, --shards and --jobs.
#pragma once

#include <cstdint>

#include "topo/builders.h"

namespace lcmp {

struct DragonflyWanOptions {
  int num_dcs = 16;  // exact DC count (last group may be partial)
  // DCs per group; 0 = auto (~sqrt(num_dcs / 2), so group count ~ 2x group
  // size and the per-DC global budget covers all group pairs).
  int group_size = 0;
  int global_links_per_dc = 2;  // global-link budget per DC
  uint64_t seed = 1;
  FabricOptions fabric;
  int64_t inter_dc_buffer_bytes = int64_t{2} * 1024 * 1024 * 1024;
};

Graph BuildDragonflyWan(const DragonflyWanOptions& opts);

struct SlimFlyWanOptions {
  int num_dcs = 50;  // rounded up to 2q² (q prime, q ≡ 1 mod 4)
  uint64_t seed = 1;
  FabricOptions fabric;
  int64_t inter_dc_buffer_bytes = int64_t{2} * 1024 * 1024 * 1024;
};

// The MMS parameter q and actual DC count for a requested minimum size.
int SlimFlyQForDcCount(int min_dcs);
int SlimFlyDcCount(int min_dcs);  // == 2 * q * q

Graph BuildSlimFlyWan(const SlimFlyWanOptions& opts);

struct FatTreeWanOptions {
  int num_dcs = 20;  // rounded up to (5/4)k² for the smallest even k
  uint64_t seed = 1;
  FabricOptions fabric;
  int64_t inter_dc_buffer_bytes = int64_t{2} * 1024 * 1024 * 1024;
};

// The arity k and actual DC count for a requested minimum size.
int FatTreeKForDcCount(int min_dcs);
int FatTreeDcCount(int min_dcs);  // == (5/4) k²

// DC layout: the k²/2 server (edge) DCs occupy ids [0, k²/2) so endpoint
// pairings land on host-bearing DCs; aggregation and core DCs are
// transit-only (no hosts).
Graph BuildFatTreeWan(const FatTreeWanOptions& opts);

}  // namespace lcmp
