// Real-world WAN importer (Topology Zoo style).
//
// Two input formats, selected by file extension:
//
//  - Edge list (anything but .gml): one link per line,
//        <name_a> <name_b> [rate_gbps] [delay_ms]
//    '#' starts a comment; node names map to dense DC ids in first-appearance
//    order. Omitted rate/delay fall back to the option defaults.
//
//  - GML subset (.gml, as published by the Internet Topology Zoo): `node`
//    blocks with `id`, `label`, and optional `Latitude`/`Longitude`;
//    `edge` blocks with `source`, `target`, and optional `LinkSpeedRaw`
//    (bits/s). When both endpoints carry coordinates the propagation delay
//    is derived from the great-circle distance at 200 km/ms fiber speed;
//    otherwise the default applies.
//
// Every imported node becomes one datacenter (fabric from the options);
// parallel edges become parallel inter-DC links (extra path diversity) and
// self-loops are dropped.
#pragma once

#include <cstdint>
#include <string>

#include "topo/builders.h"

namespace lcmp {

struct WanImportOptions {
  std::string path;
  FabricOptions fabric;
  int64_t default_rate_bps = Gbps(100);
  TimeNs default_delay_ns = Milliseconds(5);
  int64_t inter_dc_buffer_bytes = int64_t{2} * 1024 * 1024 * 1024;
};

// Parses `opts.path` into `*out` (overwritten). False with a human-readable
// *error on malformed input, unknown nodes, or I/O failure.
bool ImportWan(const WanImportOptions& opts, Graph* out, std::string* error);

}  // namespace lcmp
