#include "topo/gen/import.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace lcmp {
namespace {

constexpr double kEarthRadiusKm = 6371.0;
constexpr double kPi = 3.14159265358979323846;

double HaversineKm(double lat1, double lon1, double lat2, double lon2) {
  const double p1 = lat1 * kPi / 180.0;
  const double p2 = lat2 * kPi / 180.0;
  const double dp = (lat2 - lat1) * kPi / 180.0;
  const double dl = (lon2 - lon1) * kPi / 180.0;
  const double a = std::sin(dp / 2) * std::sin(dp / 2) +
                   std::cos(p1) * std::cos(p2) * std::sin(dl / 2) * std::sin(dl / 2);
  return 2.0 * kEarthRadiusKm * std::atan2(std::sqrt(a), std::sqrt(1.0 - a));
}

struct ParsedDc {
  std::string label;
  bool has_coords = false;
  double lat = 0;
  double lon = 0;
};

struct ParsedEdge {
  int a = -1;  // dense DC indices
  int b = -1;
  int64_t rate_bps = 0;  // 0: use default
  TimeNs delay_ns = -1;  // < 0: use default (or coordinates)
};

struct ParsedWan {
  std::vector<ParsedDc> dcs;
  std::vector<ParsedEdge> edges;
};

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) {
    *error = msg;
  }
  return false;
}

bool ParseDouble(const std::string& tok, double* out) {
  char* end = nullptr;
  *out = std::strtod(tok.c_str(), &end);
  return end != nullptr && *end == '\0' && end != tok.c_str();
}

// -------- Edge-list format --------

bool ParseEdgeList(std::istream& in, ParsedWan* wan, std::string* error) {
  std::unordered_map<std::string, int> dc_of_name;
  auto intern = [&](const std::string& name) {
    auto [it, inserted] = dc_of_name.emplace(name, static_cast<int>(wan->dcs.size()));
    if (inserted) {
      wan->dcs.push_back(ParsedDc{name, false, 0, 0});
    }
    return it->second;
  };
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::string a, b;
    if (!(ls >> a)) {
      continue;  // blank or comment-only line
    }
    if (!(ls >> b)) {
      return Fail(error, "edge-list line " + std::to_string(lineno) + ": missing second node");
    }
    ParsedEdge e;
    e.a = intern(a);
    e.b = intern(b);
    std::string tok;
    if (ls >> tok) {
      double gbps = 0;
      if (!ParseDouble(tok, &gbps) || gbps <= 0) {
        return Fail(error, "edge-list line " + std::to_string(lineno) + ": bad rate '" + tok + "'");
      }
      e.rate_bps = static_cast<int64_t>(gbps * 1e9);
    }
    if (ls >> tok) {
      double ms = 0;
      if (!ParseDouble(tok, &ms) || ms < 0) {
        return Fail(error, "edge-list line " + std::to_string(lineno) + ": bad delay '" + tok + "'");
      }
      e.delay_ns = static_cast<TimeNs>(ms * 1e6);
    }
    wan->edges.push_back(e);
  }
  return true;
}

// -------- GML subset --------

std::vector<std::string> TokenizeGml(std::istream& in) {
  std::vector<std::string> toks;
  char c;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      toks.push_back(cur);
      cur.clear();
    }
  };
  while (in.get(c)) {
    if (c == '"') {
      flush();
      std::string s;
      while (in.get(c) && c != '"') {
        s.push_back(c);
      }
      toks.push_back(s);  // quoted strings kept verbatim (may be empty)
    } else if (c == '[' || c == ']') {
      flush();
      toks.push_back(std::string(1, c));
    } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      flush();
    } else {
      cur.push_back(c);
    }
  }
  flush();
  return toks;
}

// Skips a bracketed block starting at toks[i] == "["; returns the index one
// past the matching "]".
size_t SkipBlock(const std::vector<std::string>& toks, size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i] == "[") {
      ++depth;
    } else if (toks[i] == "]") {
      if (--depth == 0) {
        return i + 1;
      }
    }
  }
  return i;
}

bool ParseGml(std::istream& in, ParsedWan* wan, std::string* error) {
  const std::vector<std::string> toks = TokenizeGml(in);
  std::unordered_map<long long, int> dc_of_gml_id;
  size_t i = 0;
  while (i < toks.size()) {
    if ((toks[i] == "node" || toks[i] == "edge") && i + 1 < toks.size() && toks[i + 1] == "[") {
      const bool is_node = toks[i] == "node";
      const size_t end = SkipBlock(toks, i + 1);
      long long gml_id = 0;
      bool has_id = false;
      ParsedDc dc;
      bool has_lat = false, has_lon = false;
      long long source = 0, target = 0;
      bool has_source = false, has_target = false;
      double speed_raw = 0;
      bool has_speed = false;
      // Key/value pairs at this block's top level only.
      for (size_t j = i + 2; j + 1 < end;) {
        const std::string& key = toks[j];
        if (toks[j + 1] == "[") {
          j = SkipBlock(toks, j + 1);  // nested block (graphics, ...): skip
          continue;
        }
        const std::string& val = toks[j + 1];
        double num = 0;
        if (is_node) {
          if (key == "id" && ParseDouble(val, &num)) {
            gml_id = static_cast<long long>(num);
            has_id = true;
          } else if (key == "label") {
            dc.label = val;
          } else if (key == "Latitude" && ParseDouble(val, &num)) {
            dc.lat = num;
            has_lat = true;
          } else if (key == "Longitude" && ParseDouble(val, &num)) {
            dc.lon = num;
            has_lon = true;
          }
        } else {
          if (key == "source" && ParseDouble(val, &num)) {
            source = static_cast<long long>(num);
            has_source = true;
          } else if (key == "target" && ParseDouble(val, &num)) {
            target = static_cast<long long>(num);
            has_target = true;
          } else if (key == "LinkSpeedRaw" && ParseDouble(val, &num)) {
            speed_raw = num;
            has_speed = true;
          }
        }
        j += 2;
      }
      if (is_node) {
        if (!has_id) {
          return Fail(error, "gml: node block without id");
        }
        if (dc_of_gml_id.count(gml_id) != 0) {
          return Fail(error, "gml: duplicate node id " + std::to_string(gml_id));
        }
        dc.has_coords = has_lat && has_lon;
        dc_of_gml_id[gml_id] = static_cast<int>(wan->dcs.size());
        wan->dcs.push_back(dc);
      } else {
        if (!has_source || !has_target) {
          return Fail(error, "gml: edge block without source/target");
        }
        const auto sit = dc_of_gml_id.find(source);
        const auto tit = dc_of_gml_id.find(target);
        if (sit == dc_of_gml_id.end() || tit == dc_of_gml_id.end()) {
          return Fail(error, "gml: edge references unknown node");
        }
        ParsedEdge e;
        e.a = sit->second;
        e.b = tit->second;
        if (has_speed && speed_raw > 0) {
          e.rate_bps = static_cast<int64_t>(speed_raw);
        }
        const ParsedDc& da = wan->dcs[static_cast<size_t>(e.a)];
        const ParsedDc& db = wan->dcs[static_cast<size_t>(e.b)];
        if (da.has_coords && db.has_coords) {
          const double km = HaversineKm(da.lat, da.lon, db.lat, db.lon);
          e.delay_ns = FiberDelayForKm(std::max<int64_t>(std::llround(km), 1));
        }
        wan->edges.push_back(e);
      }
      i = end;
    } else {
      ++i;
    }
  }
  return true;
}

}  // namespace

bool ImportWan(const WanImportOptions& opts, Graph* out, std::string* error) {
  std::ifstream in(opts.path);
  if (!in.is_open()) {
    return Fail(error, "cannot open topology file: " + opts.path);
  }
  ParsedWan wan;
  const bool is_gml =
      opts.path.size() >= 4 && opts.path.compare(opts.path.size() - 4, 4, ".gml") == 0;
  if (is_gml ? !ParseGml(in, &wan, error) : !ParseEdgeList(in, &wan, error)) {
    return false;
  }
  if (wan.dcs.size() < 2) {
    return Fail(error, "imported topology needs at least 2 nodes, got " +
                           std::to_string(wan.dcs.size()));
  }
  if (wan.edges.empty()) {
    return Fail(error, "imported topology has no links");
  }
  Graph g;
  std::vector<NodeId> dci(wan.dcs.size(), kInvalidNode);
  for (size_t dc = 0; dc < wan.dcs.size(); ++dc) {
    dci[dc] = BuildDcFabric(g, static_cast<DcId>(dc), opts.fabric);
  }
  for (const ParsedEdge& e : wan.edges) {
    if (e.a == e.b) {
      continue;  // self-loops carry no routing information
    }
    const int64_t rate = e.rate_bps > 0 ? e.rate_bps : opts.default_rate_bps;
    const TimeNs delay = e.delay_ns >= 0 ? e.delay_ns : opts.default_delay_ns;
    g.AddLink(dci[static_cast<size_t>(e.a)], dci[static_cast<size_t>(e.b)], rate, delay,
              opts.inter_dc_buffer_bytes);
  }
  *out = std::move(g);
  return true;
}

}  // namespace lcmp
