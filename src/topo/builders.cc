#include "topo/builders.h"

#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace lcmp {
namespace {

std::string DcName(DcId dc, const char* suffix, int idx = -1) {
  std::string name = "dc" + std::to_string(dc + 1) + "." + suffix;
  if (idx >= 0) {
    name += std::to_string(idx);
  }
  return name;
}

}  // namespace

NodeId BuildDcFabric(Graph& g, DcId dc, const FabricOptions& opts) {
  const NodeId dci = g.AddVertex(VertexKind::kDciSwitch, dc, DcName(dc, "dci"));
  if (opts.kind == FabricKind::kCollapsed) {
    for (int h = 0; h < opts.hosts; ++h) {
      const NodeId host = g.AddVertex(VertexKind::kHost, dc, DcName(dc, "h", h));
      g.AddLink(host, dci, opts.host_link_bps, opts.intra_delay_ns);
    }
    return dci;
  }
  // Full leaf-spine pod: hosts -> leaves -> spines -> DCI.
  std::vector<NodeId> spines;
  spines.reserve(static_cast<size_t>(opts.spines));
  for (int s = 0; s < opts.spines; ++s) {
    const NodeId spine = g.AddVertex(VertexKind::kSpine, dc, DcName(dc, "spine", s));
    g.AddLink(spine, dci, opts.spine_dci_bps, opts.intra_delay_ns);
    spines.push_back(spine);
  }
  for (int l = 0; l < opts.leaves; ++l) {
    const NodeId leaf = g.AddVertex(VertexKind::kLeaf, dc, DcName(dc, "leaf", l));
    for (const NodeId spine : spines) {
      g.AddLink(leaf, spine, opts.leaf_spine_bps, opts.intra_delay_ns);
    }
    for (int h = 0; h < opts.hosts_per_leaf; ++h) {
      const NodeId host =
          g.AddVertex(VertexKind::kHost, dc, DcName(dc, "h", l * opts.hosts_per_leaf + h));
      g.AddLink(host, leaf, opts.host_link_bps, opts.intra_delay_ns);
    }
  }
  return dci;
}

LinearTopo BuildLinear(int64_t rate_bps, TimeNs delay_ns) {
  LinearTopo t;
  t.sw = t.graph.AddVertex(VertexKind::kDciSwitch, 0, "sw");
  t.src_host = t.graph.AddVertex(VertexKind::kHost, 0, "src");
  t.dst_host = t.graph.AddVertex(VertexKind::kHost, 0, "dst");
  t.graph.AddLink(t.src_host, t.sw, rate_bps, delay_ns);
  t.graph.AddLink(t.sw, t.dst_host, rate_bps, delay_ns);
  return t;
}

Graph BuildDumbbell(int parallel_links, int hosts_per_dc, int64_t inter_rate_bps,
                    TimeNs inter_delay_ns) {
  LCMP_CHECK(parallel_links >= 1);
  Graph g;
  FabricOptions fabric;
  fabric.hosts = hosts_per_dc;
  const NodeId dci0 = BuildDcFabric(g, 0, fabric);
  const NodeId dci1 = BuildDcFabric(g, 1, fabric);
  // Parallel links between the two DCI switches. Distinct graph links map to
  // distinct ports, so multipath policies see `parallel_links` candidates.
  for (int i = 0; i < parallel_links; ++i) {
    g.AddLink(dci0, dci1, inter_rate_bps, inter_delay_ns);
  }
  return g;
}

Graph BuildTestbed8(const Testbed8Options& opts) {
  Graph g;
  std::vector<NodeId> dci(8, kInvalidNode);
  // DC1 (index 0) and DC8 (index 7) carry servers; DC2..DC7 are transit-only.
  FabricOptions transit = opts.fabric;
  transit.hosts = 0;
  transit.kind = FabricKind::kCollapsed;
  for (DcId dc = 0; dc < 8; ++dc) {
    const bool endpoint = (dc == 0 || dc == 7);
    dci[static_cast<size_t>(dc)] = BuildDcFabric(g, dc, endpoint ? opts.fabric : transit);
  }
  // Six two-hop routes DC1 -> DC(k) -> DC8, k = 2..7; both legs of a route
  // share the class attributes (Fig. 1a).
  for (int k = 0; k < 6; ++k) {
    const Testbed8PathClass& cls = opts.classes[k];
    const NodeId transit_dci = dci[static_cast<size_t>(k + 1)];
    g.AddLink(dci[0], transit_dci, cls.rate_bps, cls.per_link_delay_ns,
              opts.inter_dc_buffer_bytes);
    g.AddLink(transit_dci, dci[7], cls.rate_bps, cls.per_link_delay_ns,
              opts.inter_dc_buffer_bytes);
  }
  return g;
}

Graph BuildBso13(const Bso13Options& opts) {
  Graph g;
  std::vector<NodeId> dci(13, kInvalidNode);
  for (DcId dc = 0; dc < 13; ++dc) {
    dci[static_cast<size_t>(dc)] = BuildDcFabric(g, dc, opts.fabric);
  }
  // Europe-like sparse backbone. Delay classes: 1 ms (regional), 5 ms
  // (national), 10 ms (2000 km long haul). Capacities 40/100/200 Gbps mix
  // backbone, transit and customer links. DC numbering is 1-based in
  // comments to match the paper (DC1 = index 0, DC13 = index 12).
  struct L {
    int a, b;
    int64_t rate;
    TimeNs delay;
  };
  const TimeNs d1 = Milliseconds(1), d5 = Milliseconds(5), d10 = Milliseconds(10);
  const L links[] = {
      // Backbone chain DC1..DC13.
      {1, 2, Gbps(100), d1},  {2, 3, Gbps(100), d1},  {3, 4, Gbps(200), d5},
      {4, 5, Gbps(40), d1},   {5, 6, Gbps(100), d5},  {6, 7, Gbps(100), d1},
      {7, 8, Gbps(200), d5},  {8, 9, Gbps(40), d1},   {9, 10, Gbps(100), d5},
      {10, 11, Gbps(100), d1}, {11, 12, Gbps(40), d1}, {12, 13, Gbps(200), d5},
      // Long-haul chords creating multipath for a minority of pairs.
      {1, 5, Gbps(200), d10},  // DC1 reaches the middle of the chain directly
      {1, 8, Gbps(100), d5},
      {5, 13, Gbps(200), d10},  // two distinct 2-hop DC1->DC13 routes: a fat
      {8, 13, Gbps(100), d5},   // 40 ms 200G one vs a lean 20 ms 100G one
      {3, 7, Gbps(40), d10},
      {6, 11, Gbps(100), d10},
  };
  for (const L& l : links) {
    g.AddLink(dci[static_cast<size_t>(l.a - 1)], dci[static_cast<size_t>(l.b - 1)], l.rate,
              l.delay, opts.inter_dc_buffer_bytes);
  }
  return g;
}

Graph BuildRandomWan(const RandomWanOptions& opts) {
  LCMP_CHECK(opts.num_dcs >= 3);
  Graph g;
  std::vector<NodeId> dci(static_cast<size_t>(opts.num_dcs), kInvalidNode);
  for (DcId dc = 0; dc < opts.num_dcs; ++dc) {
    dci[static_cast<size_t>(dc)] = BuildDcFabric(g, dc, opts.fabric);
  }
  Rng rng = TopoRng(opts.seed);
  const int64_t rates[] = {Gbps(40), Gbps(100), Gbps(200)};
  const TimeNs delays[] = {Milliseconds(1), Milliseconds(5), Milliseconds(10)};
  auto random_rate = [&] { return rates[rng.NextBounded(3)]; };
  auto random_delay = [&] { return delays[rng.NextBounded(3)]; };
  // Connectivity ring.
  for (int i = 0; i < opts.num_dcs; ++i) {
    const int j = (i + 1) % opts.num_dcs;
    g.AddLink(dci[static_cast<size_t>(i)], dci[static_cast<size_t>(j)], random_rate(),
              random_delay(), opts.inter_dc_buffer_bytes);
  }
  // Random chords; duplicates between the same DCI pair become parallel
  // links (distinct candidates), which is fine.
  for (int c = 0; c < opts.extra_chords; ++c) {
    const int a = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(opts.num_dcs)));
    int b = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(opts.num_dcs)));
    if (b == a) {
      b = (a + 2) % opts.num_dcs;  // skip self and trivial ring neighbor
    }
    g.AddLink(dci[static_cast<size_t>(a)], dci[static_cast<size_t>(b)], random_rate(),
              random_delay(), opts.inter_dc_buffer_bytes);
  }
  return g;
}

}  // namespace lcmp
