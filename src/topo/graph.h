// Pure topology description, independent of the simulator.
//
// A Graph lists vertices (hosts and switches, each belonging to a datacenter)
// and full-duplex links with a rate and a one-way propagation delay. The
// network builder (sim/network.h) instantiates simulation objects from it and
// the control plane (topo/candidate_paths.h) derives multipath candidate sets.
//
// Adjacency is stored in CSR form (one offsets array plus one flat link-index
// array) so that a 5000-switch WAN costs two contiguous allocations instead of
// one heap vector per vertex. The CSR arrays are rebuilt lazily after
// mutations; callers that read adjacency from multiple threads (the sharded
// network build) must call EnsureCsr() once beforehand.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"

namespace lcmp {

// Role of a vertex in the topology.
enum class VertexKind : uint8_t {
  kHost,       // end host with an RNIC
  kLeaf,       // intra-DC leaf (ToR) switch
  kSpine,      // intra-DC spine switch
  kDciSwitch,  // datacenter-interconnect edge switch (runs the routing policy)
};

// Identifier of a datacenter; dense, starting at 0.
using DcId = int32_t;
inline constexpr DcId kInvalidDc = -1;

struct Vertex {
  VertexKind kind = VertexKind::kHost;
  DcId dc = kInvalidDc;
  std::string name;  // human-readable, e.g. "dc1.leaf0" or "DC3-DCI"
};

// Full-duplex link between vertices `a` and `b`. Both directions share the
// same rate and delay (inter-DC fiber pairs are symmetric in the paper).
struct LinkSpec {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  int64_t rate_bps = 0;
  TimeNs delay_ns = 0;
  // Egress buffer per direction; 0 means "use the network default".
  int64_t buffer_bytes = 0;
};

class Graph {
 public:
  // Adds a vertex and returns its id. Ids are dense and stable.
  NodeId AddVertex(VertexKind kind, DcId dc, std::string name);

  // Adds a full-duplex link; both endpoints must exist. Returns link index.
  int AddLink(NodeId a, NodeId b, int64_t rate_bps, TimeNs delay_ns, int64_t buffer_bytes = 0);

  // Rescales an existing link's rate in place (the oversubscribed-border
  // `os_borders` experiment axis). Structure — endpoints, delay, adjacency —
  // is untouched, so the CSR cache stays valid.
  void SetLinkRate(int idx, int64_t rate_bps);

  int num_vertices() const { return static_cast<int>(vertices_.size()); }
  int num_links() const { return static_cast<int>(links_.size()); }
  int num_dcs() const { return num_dcs_; }

  const Vertex& vertex(NodeId id) const { return vertices_[static_cast<size_t>(id)]; }
  const LinkSpec& link(int idx) const { return links_[static_cast<size_t>(idx)]; }
  const std::vector<Vertex>& vertices() const { return vertices_; }
  const std::vector<LinkSpec>& links() const { return links_; }

  // Link indices incident to `id` (each full-duplex link appears once), in
  // AddLink order — the same order the old per-vertex vectors produced.
  std::span<const int32_t> incident_links(NodeId id) const {
    EnsureCsr();
    const size_t v = static_cast<size_t>(id);
    return {csr_links_.data() + csr_offsets_[v],
            static_cast<size_t>(csr_offsets_[v + 1] - csr_offsets_[v])};
  }

  // Rebuilds the CSR adjacency if links were added since the last build.
  // Idempotent and cheap when clean; NOT thread-safe, so concurrent readers
  // (shard workers) rely on the single-threaded network build calling this
  // once up front.
  void EnsureCsr() const;

  // The vertex on the other side of link `link_idx` from `id`.
  NodeId Peer(int link_idx, NodeId id) const;

  // All host vertices in datacenter `dc`.
  std::vector<NodeId> HostsInDc(DcId dc) const;

  // The unique DCI switch of datacenter `dc`; kInvalidNode if none.
  // O(1): maintained incrementally by AddVertex (first DCI added wins, which
  // is also the lowest-id DCI the old linear scan returned).
  NodeId DciOfDc(DcId dc) const {
    if (dc < 0 || static_cast<size_t>(dc) >= dci_of_dc_.size()) {
      return kInvalidNode;
    }
    return dci_of_dc_[static_cast<size_t>(dc)];
  }

  // All DCI switches, ordered by DC id.
  std::vector<NodeId> DciSwitches() const;

  // Bytes of heap owned by the topology description itself (vertices, links,
  // CSR adjacency, name storage). Feeds the lcmp.topo.bytes gauge.
  size_t MemoryBytes() const;

 private:
  std::vector<Vertex> vertices_;
  std::vector<LinkSpec> links_;
  std::vector<NodeId> dci_of_dc_;  // per-DC first DCI switch (kInvalidNode if none)
  int num_dcs_ = 0;

  // Lazily (re)built adjacency: csr_offsets_ has num_vertices()+1 entries;
  // csr_links_ lists link indices grouped by vertex. Mutable because the
  // rebuild is a cache fill behind a const read API.
  mutable std::vector<int32_t> csr_offsets_;
  mutable std::vector<int32_t> csr_links_;
  mutable bool csr_valid_ = false;
};

}  // namespace lcmp
