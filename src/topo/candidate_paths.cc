#include "topo/candidate_paths.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/hashing.h"
#include "common/logging.h"
#include "common/rng.h"

namespace lcmp {
namespace {

constexpr TimeNs kInfDelay = std::numeric_limits<TimeNs>::max() / 4;

struct InterDcLink {
  NodeId a, b;
  int link_idx;
  int64_t rate_bps;
  TimeNs delay_ns;
};

// Downhill candidate computation for one destination over the given inter-DC
// adjacency (possibly a layer subgraph). Fills candidates[src_dc] and, when
// non-null, hop_dist[src_dc].
void ComputeDownhillToDst(const Graph& g, const std::vector<std::vector<InterDcLink>>& adj,
                          const std::vector<NodeId>& dci_of_dc, DcId dst_dc,
                          std::vector<std::vector<RouteCandidate>>* candidates_by_src,
                          std::vector<int>* hop_dist_by_src) {
  const int num_dcs = static_cast<int>(dci_of_dc.size());
  const NodeId dst_dci = dci_of_dc[static_cast<size_t>(dst_dc)];
  if (dst_dci == kInvalidNode) {
    return;
  }
  // BFS hop distances toward dst over the inter-DC graph.
  std::vector<int> dist(static_cast<size_t>(g.num_vertices()), -1);
  std::queue<NodeId> bfs;
  dist[static_cast<size_t>(dst_dci)] = 0;
  bfs.push(dst_dci);
  while (!bfs.empty()) {
    const NodeId u = bfs.front();
    bfs.pop();
    for (const InterDcLink& l : adj[static_cast<size_t>(u)]) {
      if (dist[static_cast<size_t>(l.b)] < 0) {
        dist[static_cast<size_t>(l.b)] = dist[static_cast<size_t>(u)] + 1;
        bfs.push(l.b);
      }
    }
  }
  // Downhill DP in increasing hop distance: best residual delay and the
  // bottleneck along that best-delay downhill route.
  std::vector<NodeId> order;
  for (DcId dc = 0; dc < num_dcs; ++dc) {
    const NodeId dci = dci_of_dc[static_cast<size_t>(dc)];
    if (dci != kInvalidNode && dist[static_cast<size_t>(dci)] >= 0) {
      order.push_back(dci);
    }
  }
  std::sort(order.begin(), order.end(), [&](NodeId x, NodeId y) {
    return dist[static_cast<size_t>(x)] < dist[static_cast<size_t>(y)];
  });
  std::vector<TimeNs> best_delay(static_cast<size_t>(g.num_vertices()), kInfDelay);
  std::vector<int64_t> best_bneck(static_cast<size_t>(g.num_vertices()), 0);
  best_delay[static_cast<size_t>(dst_dci)] = 0;
  best_bneck[static_cast<size_t>(dst_dci)] = std::numeric_limits<int64_t>::max();

  for (const NodeId u : order) {
    const DcId udc = g.vertex(u).dc;
    if (hop_dist_by_src != nullptr) {
      (*hop_dist_by_src)[static_cast<size_t>(udc)] = dist[static_cast<size_t>(u)];
    }
    if (u == dst_dci) {
      continue;
    }
    std::vector<RouteCandidate>& cands = (*candidates_by_src)[static_cast<size_t>(udc)];
    for (const InterDcLink& l : adj[static_cast<size_t>(u)]) {
      const NodeId v = l.b;
      if (dist[static_cast<size_t>(v)] < 0 ||
          dist[static_cast<size_t>(v)] >= dist[static_cast<size_t>(u)]) {
        continue;  // not downhill
      }
      RouteCandidate c;
      c.next_hop = v;
      c.link_idx = l.link_idx;
      c.path_delay_ns = l.delay_ns + best_delay[static_cast<size_t>(v)];
      c.bottleneck_bps = std::min(l.rate_bps, best_bneck[static_cast<size_t>(v)]);
      cands.push_back(c);
      // Update this node's own best residual metrics.
      if (c.path_delay_ns < best_delay[static_cast<size_t>(u)] ||
          (c.path_delay_ns == best_delay[static_cast<size_t>(u)] &&
           c.bottleneck_bps > best_bneck[static_cast<size_t>(u)])) {
        best_delay[static_cast<size_t>(u)] = c.path_delay_ns;
        best_bneck[static_cast<size_t>(u)] = c.bottleneck_bps;
      }
    }
    // Stable order (by first-hop link index) for reproducibility.
    std::sort(cands.begin(), cands.end(), [](const RouteCandidate& x, const RouteCandidate& y) {
      return x.link_idx < y.link_idx;
    });
  }
}

// Per-DCI inter-DC adjacency, restricted to links where keep[link_idx] is
// true (keep empty == keep all).
std::vector<std::vector<InterDcLink>> BuildInterDcAdjacency(const Graph& g,
                                                            const std::vector<bool>& keep) {
  std::vector<std::vector<InterDcLink>> adj(static_cast<size_t>(g.num_vertices()));
  for (int li = 0; li < g.num_links(); ++li) {
    if (!keep.empty() && !keep[static_cast<size_t>(li)]) {
      continue;
    }
    const LinkSpec& l = g.link(li);
    const Vertex& va = g.vertex(l.a);
    const Vertex& vb = g.vertex(l.b);
    if (va.kind == VertexKind::kDciSwitch && vb.kind == VertexKind::kDciSwitch) {
      adj[static_cast<size_t>(l.a)].push_back({l.a, l.b, li, l.rate_bps, l.delay_ns});
      adj[static_cast<size_t>(l.b)].push_back({l.b, l.a, li, l.rate_bps, l.delay_ns});
    }
  }
  return adj;
}

}  // namespace

InterDcRoutes InterDcRoutes::Compute(const Graph& g) { return Compute(g, CandidatePathOptions{}); }

InterDcRoutes InterDcRoutes::Compute(const Graph& g, const CandidatePathOptions& opts) {
  InterDcRoutes r;
  r.num_dcs_ = g.num_dcs();
  r.dci_of_dc_.assign(static_cast<size_t>(r.num_dcs_), kInvalidNode);
  r.dc_of_node_.assign(static_cast<size_t>(g.num_vertices()), kInvalidDc);
  for (DcId dc = 0; dc < r.num_dcs_; ++dc) {
    const NodeId dci = g.DciOfDc(dc);
    r.dci_of_dc_[static_cast<size_t>(dc)] = dci;
    if (dci != kInvalidNode) {
      r.dc_of_node_[static_cast<size_t>(dci)] = dc;
    }
  }

  const size_t ndc = static_cast<size_t>(r.num_dcs_);
  r.candidates_.assign(ndc, std::vector<std::vector<RouteCandidate>>(ndc));
  r.hop_dist_.assign(ndc, std::vector<int>(ndc, -1));

  // Layer 0: the minimal downhill set over the full inter-DC graph.
  const std::vector<std::vector<InterDcLink>> adj = BuildInterDcAdjacency(g, {});
  for (DcId dst_dc = 0; dst_dc < r.num_dcs_; ++dst_dc) {
    std::vector<std::vector<RouteCandidate>> by_src(ndc);
    std::vector<int> hops(ndc, -1);
    ComputeDownhillToDst(g, adj, r.dci_of_dc_, dst_dc, &by_src, &hops);
    for (size_t src = 0; src < ndc; ++src) {
      r.candidates_[src][static_cast<size_t>(dst_dc)] = std::move(by_src[src]);
      r.hop_dist_[src][static_cast<size_t>(dst_dc)] = hops[src];
    }
  }

  if (opts.strategy != PathStrategyKind::kLayered || opts.layers <= 1) {
    return r;
  }

  // Layers >= 1: downhill routing on a seeded random subgraph. Each layer
  // consumes one Rng draw per inter-DC link, in link-index order, from its
  // own stream — independent of shard count, thread count, and traffic.
  for (int layer = 1; layer < opts.layers; ++layer) {
    Rng rng(Mix64(opts.seed ^ 0x5eedfa7caa7e5ULL) ^
            (0x100000001b3ULL * static_cast<uint64_t>(layer)));
    std::vector<bool> keep(static_cast<size_t>(g.num_links()), true);
    for (int li = 0; li < g.num_links(); ++li) {
      const LinkSpec& l = g.link(li);
      if (g.vertex(l.a).kind != VertexKind::kDciSwitch ||
          g.vertex(l.b).kind != VertexKind::kDciSwitch) {
        continue;
      }
      if (static_cast<int>(rng.NextBounded(1000)) < opts.drop_permille) {
        keep[static_cast<size_t>(li)] = false;
      }
    }
    const std::vector<std::vector<InterDcLink>> sub = BuildInterDcAdjacency(g, keep);
    std::vector<std::vector<std::vector<RouteCandidate>>> layer_cands(
        ndc, std::vector<std::vector<RouteCandidate>>(ndc));
    for (DcId dst_dc = 0; dst_dc < r.num_dcs_; ++dst_dc) {
      std::vector<std::vector<RouteCandidate>> by_src(ndc);
      ComputeDownhillToDst(g, sub, r.dci_of_dc_, dst_dc, &by_src, nullptr);
      for (size_t src = 0; src < ndc; ++src) {
        layer_cands[src][static_cast<size_t>(dst_dc)] = std::move(by_src[src]);
      }
    }
    r.extra_layers_.push_back(std::move(layer_cands));
  }
  return r;
}

DcId InterDcRoutes::DcOfDci(NodeId dci) const {
  if (dci < 0 || static_cast<size_t>(dci) >= dc_of_node_.size()) {
    return kInvalidDc;
  }
  return dc_of_node_[static_cast<size_t>(dci)];
}

const std::vector<RouteCandidate>& InterDcRoutes::Candidates(NodeId dci, DcId dst_dc) const {
  static const std::vector<RouteCandidate> kEmpty;
  if (dst_dc < 0 || dst_dc >= num_dcs_) {
    return kEmpty;
  }
  const DcId dc = DcOfDci(dci);
  if (dc == kInvalidDc) {
    return kEmpty;
  }
  return candidates_[static_cast<size_t>(dc)][static_cast<size_t>(dst_dc)];
}

const std::vector<RouteCandidate>& InterDcRoutes::CandidatesInLayer(NodeId dci, DcId dst_dc,
                                                                    int layer) const {
  static const std::vector<RouteCandidate> kEmpty;
  if (layer <= 0) {
    return Candidates(dci, dst_dc);
  }
  if (dst_dc < 0 || dst_dc >= num_dcs_ ||
      static_cast<size_t>(layer - 1) >= extra_layers_.size()) {
    return kEmpty;
  }
  const DcId dc = DcOfDci(dci);
  if (dc == kInvalidDc) {
    return kEmpty;
  }
  return extra_layers_[static_cast<size_t>(layer - 1)][static_cast<size_t>(dc)]
                      [static_cast<size_t>(dst_dc)];
}

int InterDcRoutes::HopDistance(NodeId dci, DcId dst_dc) const {
  if (dst_dc < 0 || dst_dc >= num_dcs_) {
    return -1;
  }
  const DcId dc = DcOfDci(dci);
  if (dc == kInvalidDc) {
    return -1;
  }
  return hop_dist_[static_cast<size_t>(dc)][static_cast<size_t>(dst_dc)];
}

double InterDcRoutes::MultipathPairFraction() const {
  int pairs = 0;
  int multi = 0;
  for (DcId s = 0; s < num_dcs_; ++s) {
    for (DcId d = 0; d < num_dcs_; ++d) {
      if (s == d) {
        continue;
      }
      ++pairs;
      if (candidates_[static_cast<size_t>(s)][static_cast<size_t>(d)].size() >= 2) {
        ++multi;
      }
    }
  }
  return pairs == 0 ? 0.0 : static_cast<double>(multi) / pairs;
}

PathMetric ComputeMinDelayPath(const Graph& g, NodeId src, NodeId dst) {
  PathMetric out;
  if (src == dst) {
    out.reachable = true;
    out.bottleneck_bps = std::numeric_limits<int64_t>::max();
    return out;
  }
  const size_t n = static_cast<size_t>(g.num_vertices());
  std::vector<TimeNs> delay(n, kInfDelay);
  std::vector<int64_t> bneck(n, 0);
  std::vector<int> hops(n, 0);
  using Entry = std::pair<TimeNs, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  delay[static_cast<size_t>(src)] = 0;
  bneck[static_cast<size_t>(src)] = std::numeric_limits<int64_t>::max();
  pq.push({0, src});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > delay[static_cast<size_t>(u)]) {
      continue;
    }
    if (u == dst) {
      break;
    }
    for (const int li : g.incident_links(u)) {
      const LinkSpec& l = g.link(li);
      const NodeId v = g.Peer(li, u);
      const TimeNs nd = d + l.delay_ns;
      const int64_t nb = std::min(bneck[static_cast<size_t>(u)], l.rate_bps);
      if (nd < delay[static_cast<size_t>(v)] ||
          (nd == delay[static_cast<size_t>(v)] && nb > bneck[static_cast<size_t>(v)])) {
        delay[static_cast<size_t>(v)] = nd;
        bneck[static_cast<size_t>(v)] = nb;
        hops[static_cast<size_t>(v)] = hops[static_cast<size_t>(u)] + 1;
        pq.push({nd, v});
      }
    }
  }
  if (delay[static_cast<size_t>(dst)] >= kInfDelay) {
    return out;
  }
  out.reachable = true;
  out.delay_ns = delay[static_cast<size_t>(dst)];
  out.bottleneck_bps = bneck[static_cast<size_t>(dst)];
  out.hops = hops[static_cast<size_t>(dst)];
  return out;
}

const PathMetric& PathOracle::Metric(NodeId src, NodeId dst) {
  const uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(src)) << 32) |
                       static_cast<uint32_t>(dst);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_.emplace(key, ComputeMinDelayPath(*graph_, src, dst)).first;
  }
  return it->second;
}

}  // namespace lcmp
