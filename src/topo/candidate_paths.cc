#include "topo/candidate_paths.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/logging.h"

namespace lcmp {
namespace {

constexpr TimeNs kInfDelay = std::numeric_limits<TimeNs>::max() / 4;

struct InterDcLink {
  NodeId a, b;
  int link_idx;
  int64_t rate_bps;
  TimeNs delay_ns;
};

}  // namespace

InterDcRoutes InterDcRoutes::Compute(const Graph& g) {
  InterDcRoutes r;
  r.num_dcs_ = g.num_dcs();
  r.dci_of_dc_.assign(static_cast<size_t>(r.num_dcs_), kInvalidNode);
  for (DcId dc = 0; dc < r.num_dcs_; ++dc) {
    r.dci_of_dc_[static_cast<size_t>(dc)] = g.DciOfDc(dc);
  }

  // Inter-DC adjacency: per DCI switch, the incident DCI<->DCI links.
  std::vector<std::vector<InterDcLink>> adj(static_cast<size_t>(g.num_vertices()));
  for (int li = 0; li < g.num_links(); ++li) {
    const LinkSpec& l = g.link(li);
    const Vertex& va = g.vertex(l.a);
    const Vertex& vb = g.vertex(l.b);
    if (va.kind == VertexKind::kDciSwitch && vb.kind == VertexKind::kDciSwitch) {
      adj[static_cast<size_t>(l.a)].push_back({l.a, l.b, li, l.rate_bps, l.delay_ns});
      adj[static_cast<size_t>(l.b)].push_back({l.b, l.a, li, l.rate_bps, l.delay_ns});
    }
  }

  const size_t ndc = static_cast<size_t>(r.num_dcs_);
  r.candidates_.assign(ndc, std::vector<std::vector<RouteCandidate>>(ndc));
  r.hop_dist_.assign(ndc, std::vector<int>(ndc, -1));

  for (DcId dst_dc = 0; dst_dc < r.num_dcs_; ++dst_dc) {
    const NodeId dst_dci = r.dci_of_dc_[static_cast<size_t>(dst_dc)];
    if (dst_dci == kInvalidNode) {
      continue;
    }
    // BFS hop distances toward dst over the inter-DC graph.
    std::vector<int> dist(static_cast<size_t>(g.num_vertices()), -1);
    std::queue<NodeId> bfs;
    dist[static_cast<size_t>(dst_dci)] = 0;
    bfs.push(dst_dci);
    while (!bfs.empty()) {
      const NodeId u = bfs.front();
      bfs.pop();
      for (const InterDcLink& l : adj[static_cast<size_t>(u)]) {
        if (dist[static_cast<size_t>(l.b)] < 0) {
          dist[static_cast<size_t>(l.b)] = dist[static_cast<size_t>(u)] + 1;
          bfs.push(l.b);
        }
      }
    }
    // Downhill DP in increasing hop distance: best residual delay and the
    // bottleneck along that best-delay downhill route.
    std::vector<NodeId> order;
    for (DcId dc = 0; dc < r.num_dcs_; ++dc) {
      const NodeId dci = r.dci_of_dc_[static_cast<size_t>(dc)];
      if (dci != kInvalidNode && dist[static_cast<size_t>(dci)] >= 0) {
        order.push_back(dci);
      }
    }
    std::sort(order.begin(), order.end(), [&](NodeId x, NodeId y) {
      return dist[static_cast<size_t>(x)] < dist[static_cast<size_t>(y)];
    });
    std::vector<TimeNs> best_delay(static_cast<size_t>(g.num_vertices()), kInfDelay);
    std::vector<int64_t> best_bneck(static_cast<size_t>(g.num_vertices()), 0);
    best_delay[static_cast<size_t>(dst_dci)] = 0;
    best_bneck[static_cast<size_t>(dst_dci)] = std::numeric_limits<int64_t>::max();

    for (const NodeId u : order) {
      const DcId udc = g.vertex(u).dc;
      r.hop_dist_[static_cast<size_t>(udc)][static_cast<size_t>(dst_dc)] =
          dist[static_cast<size_t>(u)];
      if (u == dst_dci) {
        continue;
      }
      std::vector<RouteCandidate>& cands =
          r.candidates_[static_cast<size_t>(udc)][static_cast<size_t>(dst_dc)];
      for (const InterDcLink& l : adj[static_cast<size_t>(u)]) {
        const NodeId v = l.b;
        if (dist[static_cast<size_t>(v)] < 0 ||
            dist[static_cast<size_t>(v)] >= dist[static_cast<size_t>(u)]) {
          continue;  // not downhill
        }
        RouteCandidate c;
        c.next_hop = v;
        c.link_idx = l.link_idx;
        c.path_delay_ns = l.delay_ns + best_delay[static_cast<size_t>(v)];
        c.bottleneck_bps = std::min(l.rate_bps, best_bneck[static_cast<size_t>(v)]);
        cands.push_back(c);
        // Update this node's own best residual metrics.
        if (c.path_delay_ns < best_delay[static_cast<size_t>(u)] ||
            (c.path_delay_ns == best_delay[static_cast<size_t>(u)] &&
             c.bottleneck_bps > best_bneck[static_cast<size_t>(u)])) {
          best_delay[static_cast<size_t>(u)] = c.path_delay_ns;
          best_bneck[static_cast<size_t>(u)] = c.bottleneck_bps;
        }
      }
      // Stable order (by first-hop link index) for reproducibility.
      std::sort(cands.begin(), cands.end(),
                [](const RouteCandidate& x, const RouteCandidate& y) {
                  return x.link_idx < y.link_idx;
                });
    }
  }
  return r;
}

const std::vector<RouteCandidate>& InterDcRoutes::Candidates(NodeId dci, DcId dst_dc) const {
  static const std::vector<RouteCandidate> kEmpty;
  if (dst_dc < 0 || dst_dc >= num_dcs_) {
    return kEmpty;
  }
  // Resolve the switch's DC via the stored DCI table.
  for (DcId dc = 0; dc < num_dcs_; ++dc) {
    if (dci_of_dc_[static_cast<size_t>(dc)] == dci) {
      return candidates_[static_cast<size_t>(dc)][static_cast<size_t>(dst_dc)];
    }
  }
  return kEmpty;
}

int InterDcRoutes::HopDistance(NodeId dci, DcId dst_dc) const {
  if (dst_dc < 0 || dst_dc >= num_dcs_) {
    return -1;
  }
  for (DcId dc = 0; dc < num_dcs_; ++dc) {
    if (dci_of_dc_[static_cast<size_t>(dc)] == dci) {
      return hop_dist_[static_cast<size_t>(dc)][static_cast<size_t>(dst_dc)];
    }
  }
  return -1;
}

double InterDcRoutes::MultipathPairFraction() const {
  int pairs = 0;
  int multi = 0;
  for (DcId s = 0; s < num_dcs_; ++s) {
    for (DcId d = 0; d < num_dcs_; ++d) {
      if (s == d) {
        continue;
      }
      ++pairs;
      if (candidates_[static_cast<size_t>(s)][static_cast<size_t>(d)].size() >= 2) {
        ++multi;
      }
    }
  }
  return pairs == 0 ? 0.0 : static_cast<double>(multi) / pairs;
}

PathMetric ComputeMinDelayPath(const Graph& g, NodeId src, NodeId dst) {
  PathMetric out;
  if (src == dst) {
    out.reachable = true;
    out.bottleneck_bps = std::numeric_limits<int64_t>::max();
    return out;
  }
  const size_t n = static_cast<size_t>(g.num_vertices());
  std::vector<TimeNs> delay(n, kInfDelay);
  std::vector<int64_t> bneck(n, 0);
  std::vector<int> hops(n, 0);
  using Entry = std::pair<TimeNs, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  delay[static_cast<size_t>(src)] = 0;
  bneck[static_cast<size_t>(src)] = std::numeric_limits<int64_t>::max();
  pq.push({0, src});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > delay[static_cast<size_t>(u)]) {
      continue;
    }
    if (u == dst) {
      break;
    }
    for (const int li : g.incident_links(u)) {
      const LinkSpec& l = g.link(li);
      const NodeId v = g.Peer(li, u);
      const TimeNs nd = d + l.delay_ns;
      const int64_t nb = std::min(bneck[static_cast<size_t>(u)], l.rate_bps);
      if (nd < delay[static_cast<size_t>(v)] ||
          (nd == delay[static_cast<size_t>(v)] && nb > bneck[static_cast<size_t>(v)])) {
        delay[static_cast<size_t>(v)] = nd;
        bneck[static_cast<size_t>(v)] = nb;
        hops[static_cast<size_t>(v)] = hops[static_cast<size_t>(u)] + 1;
        pq.push({nd, v});
      }
    }
  }
  if (delay[static_cast<size_t>(dst)] >= kInfDelay) {
    return out;
  }
  out.reachable = true;
  out.delay_ns = delay[static_cast<size_t>(dst)];
  out.bottleneck_bps = bneck[static_cast<size_t>(dst)];
  out.hops = hops[static_cast<size_t>(dst)];
  return out;
}

const PathMetric& PathOracle::Metric(NodeId src, NodeId dst) {
  const uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(src)) << 32) |
                       static_cast<uint32_t>(dst);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_.emplace(key, ComputeMinDelayPath(*graph_, src, dst)).first;
  }
  return it->second;
}

}  // namespace lcmp
