// Pearson correlation (Fig. 6 simulator-fidelity analysis).
#pragma once

#include <span>

namespace lcmp {

// Pearson correlation coefficient of two equally sized series.
// Returns 0 when fewer than two points or either variance is zero.
double PearsonCorrelation(std::span<const double> x, std::span<const double> y);

}  // namespace lcmp
