#include "stats/fct_recorder.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace lcmp {

TimeNs FctRecorder::IdealFct(NodeId src, NodeId dst, uint64_t bytes) {
  const PathMetric& m = oracle_.Metric(src, dst);
  LCMP_CHECK(m.reachable);
  const int64_t bneck = std::max<int64_t>(m.bottleneck_bps, 1);
  return m.delay_ns + SerializationDelay(static_cast<int64_t>(bytes), bneck);
}

void FctRecorder::OnComplete(const FlowRecord& record) {
  Sample s;
  s.flow = record.spec.id;
  s.bytes = record.spec.size_bytes;
  s.start = record.start_time;
  s.fct = record.complete_time - record.start_time;
  s.ideal_fct = std::max<TimeNs>(IdealFct(record.spec.src, record.spec.dst, s.bytes), 1);
  s.slowdown = static_cast<double>(s.fct) / static_cast<double>(s.ideal_fct);
  s.src_dc = graph_->vertex(record.spec.src).dc;
  s.dst_dc = graph_->vertex(record.spec.dst).dc;
  samples_.push_back(s);
}

SlowdownStats FctRecorder::Summarize(const SampleSet& set) {
  SlowdownStats out;
  out.count = static_cast<int>(set.size());
  if (out.count == 0) {
    return out;
  }
  out.mean = set.Mean();
  out.p50 = set.Percentile(50);
  out.p95 = set.Percentile(95);
  out.p99 = set.Percentile(99);
  return out;
}

SlowdownStats FctRecorder::Overall() const {
  return Where([](const Sample&) { return true; });
}

SlowdownStats FctRecorder::Where(const std::function<bool(const Sample&)>& pred) const {
  SampleSet set;
  for (const Sample& s : samples_) {
    if (pred(s)) {
      set.Add(s.slowdown);
    }
  }
  return Summarize(set);
}

SlowdownStats FctRecorder::ForDcPair(DcId src_dc, DcId dst_dc) const {
  return Where([src_dc, dst_dc](const Sample& s) {
    return s.src_dc == src_dc && s.dst_dc == dst_dc;
  });
}

std::vector<BucketStats> FctRecorder::ByBuckets(const std::vector<uint64_t>& edges) const {
  std::vector<BucketStats> out;
  std::vector<SampleSet> sets(edges.size() + 1);
  for (const Sample& s : samples_) {
    const auto it = std::lower_bound(edges.begin(), edges.end(), s.bytes);
    sets[static_cast<size_t>(it - edges.begin())].Add(s.slowdown);
  }
  uint64_t lo = 0;
  for (size_t i = 0; i < sets.size(); ++i) {
    BucketStats b;
    b.size_lo = lo;
    b.size_hi = i < edges.size() ? edges[i] : std::numeric_limits<uint64_t>::max();
    b.stats = Summarize(sets[i]);
    lo = b.size_hi + 1;
    if (b.stats.count > 0) {
      out.push_back(b);
    }
  }
  return out;
}

}  // namespace lcmp
