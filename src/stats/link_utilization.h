// Per-link utilization measurement over a time window (Fig. 1b).
#pragma once

#include <string>
#include <vector>

#include "sim/network.h"

namespace lcmp {

struct LinkUtilization {
  std::string name;  // "dc1.dci->dc2.dci"
  int link_idx = -1;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  double utilization = 0;   // fraction of capacity used in the window
  int64_t bytes = 0;        // bytes transmitted in the window
  int64_t rate_bps = 0;
};

// Snapshots inter-DC directed-link TX counters at Begin() and computes
// utilization over [begin, End()] from the deltas.
class LinkUtilizationTracker {
 public:
  explicit LinkUtilizationTracker(Network* net) : net_(net) {}

  void Begin();
  std::vector<LinkUtilization> End() const;

 private:
  Network* net_;
  TimeNs begin_time_ = 0;
  std::vector<int64_t> baseline_bytes_;
};

}  // namespace lcmp
