#include "stats/link_utilization.h"

#include "common/logging.h"

namespace lcmp {

void LinkUtilizationTracker::Begin() {
  begin_time_ = net_->control_sim().now();
  baseline_bytes_.clear();
  for (const DirectedLinkRef& ref : net_->InterDcDirectedLinks()) {
    baseline_bytes_.push_back(ref.port->tx_bytes());
  }
}

std::vector<LinkUtilization> LinkUtilizationTracker::End() const {
  std::vector<LinkUtilization> out;
  const TimeNs elapsed = net_->control_sim().now() - begin_time_;
  const auto refs = net_->InterDcDirectedLinks();
  LCMP_CHECK(refs.size() == baseline_bytes_.size());
  for (size_t i = 0; i < refs.size(); ++i) {
    const DirectedLinkRef& ref = refs[i];
    LinkUtilization u;
    u.name = net_->DirectedLinkName(ref);
    u.link_idx = ref.link_idx;
    u.from = ref.from;
    u.to = ref.to;
    u.rate_bps = ref.port->rate_bps();
    u.bytes = ref.port->tx_bytes() - baseline_bytes_[i];
    if (elapsed > 0) {
      const double capacity_bytes = static_cast<double>(u.rate_bps) / 8.0 *
                                    static_cast<double>(elapsed) / kNsPerSec;
      u.utilization = capacity_bytes > 0 ? static_cast<double>(u.bytes) / capacity_bytes : 0.0;
    }
    out.push_back(std::move(u));
  }
  return out;
}

}  // namespace lcmp
