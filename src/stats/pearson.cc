#include "stats/pearson.h"

#include <cmath>

namespace lcmp {

double PearsonCorrelation(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) {
    return 0.0;
  }
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0 || syy <= 0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace lcmp
