// FCT-slowdown accounting (the artifact's analysis scripts).
//
// Slowdown = actual FCT / ideal FCT, where ideal FCT is the flow's FCT when
// run alone on the minimum-propagation-delay path of the topology (paper
// Sec. 6.1 "Metrics"): one-way propagation delay plus transmission at that
// path's bottleneck rate.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/histogram.h"
#include "topo/candidate_paths.h"
#include "topo/graph.h"
#include "transport/flow.h"

namespace lcmp {

// Percentile summary of a slowdown population.
struct SlowdownStats {
  int count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

// Per-size-bucket summary (Fig. 11 style).
struct BucketStats {
  uint64_t size_lo = 0;  // inclusive
  uint64_t size_hi = 0;  // inclusive upper edge of the bucket
  SlowdownStats stats;
};

class FctRecorder {
 public:
  explicit FctRecorder(const Graph* g) : graph_(g), oracle_(g) {}

  // Completion callback; computes and stores the slowdown sample.
  void OnComplete(const FlowRecord& record);

  // One retained sample per completed flow.
  struct Sample {
    FlowId flow = 0;
    uint64_t bytes = 0;
    TimeNs start = 0;  // transmission start (time-binned recovery analysis)
    TimeNs fct = 0;
    TimeNs ideal_fct = 0;
    double slowdown = 1.0;
    DcId src_dc = kInvalidDc;
    DcId dst_dc = kInvalidDc;
  };

  int completed() const { return static_cast<int>(samples_.size()); }
  const std::vector<Sample>& samples() const { return samples_; }

  // Summary over all samples.
  SlowdownStats Overall() const;

  // Summary over samples matching `pred`.
  SlowdownStats Where(const std::function<bool(const Sample&)>& pred) const;

  // Summary restricted to one ordered DC pair (Fig. 8) — pass both
  // directions separately or combine with Where().
  SlowdownStats ForDcPair(DcId src_dc, DcId dst_dc) const;

  // Per-size-bucket breakdown; `edges` are ascending inclusive upper bounds
  // (flows above the last edge land in a final overflow bucket).
  std::vector<BucketStats> ByBuckets(const std::vector<uint64_t>& edges) const;

  // Ideal FCT for a hypothetical flow (exposed for tests).
  TimeNs IdealFct(NodeId src, NodeId dst, uint64_t bytes);

 private:
  static SlowdownStats Summarize(const SampleSet& set);

  const Graph* graph_;
  PathOracle oracle_;
  std::vector<Sample> samples_;
};

}  // namespace lcmp
