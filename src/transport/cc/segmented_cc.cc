#include "transport/cc/segmented_cc.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace lcmp {

namespace {

constexpr uint8_t kSegmentBits[SegmentedCc::kNumSegments] = {kSegIntraSrc, kSegInterDc,
                                                             kSegIntraDst};

}  // namespace

SegmentedCc::SegmentedCc(std::unique_ptr<CongestionControl> intra_src,
                         std::unique_ptr<CongestionControl> inter,
                         std::unique_ptr<CongestionControl> intra_dst,
                         const SegmentBaseRtts& base_rtts, std::string name)
    : base_rtts_(base_rtts), name_(std::move(name)) {
  segments_[kIntraSrc] = std::move(intra_src);
  segments_[kInterDc] = std::move(inter);
  segments_[kIntraDst] = std::move(intra_dst);
  for (const auto& segment : segments_) {
    LCMP_CHECK(segment != nullptr);
  }
}

void SegmentedCc::Init(int64_t line_rate_bps, TimeNs /*base_rtt*/, TimeNs now) {
  segments_[kIntraSrc]->Init(line_rate_bps, std::max<TimeNs>(base_rtts_.intra_src, 1), now);
  segments_[kInterDc]->Init(line_rate_bps, std::max<TimeNs>(base_rtts_.inter, 1), now);
  segments_[kIntraDst]->Init(line_rate_bps, std::max<TimeNs>(base_rtts_.intra_dst, 1), now);
}

SegmentRtts SegmentedCc::SplitRtt(const Packet& ack, TimeNs rtt) const {
  SegmentRtts split;
  if (ack.gw_src_off != 0 && ack.gw_dst_off != 0 && ack.gw_dst_off >= ack.gw_src_off) {
    // Exact split: the forward one-way delay to each gateway is stamped on
    // the packet; doubling models the (symmetric-path) segment round trip
    // and the remainder absorbs any return-path asymmetry into the
    // destination segment.
    split.intra_src = 2 * static_cast<TimeNs>(ack.gw_src_off);
    split.inter = 2 * static_cast<TimeNs>(ack.gw_dst_off - ack.gw_src_off);
    split.intra_dst = rtt - split.intra_src - split.inter;
  } else {
    // Stamps missing (no DCI on the path): apportion by the unloaded
    // segment round trips.
    const double total = static_cast<double>(
        std::max<TimeNs>(base_rtts_.intra_src + base_rtts_.inter + base_rtts_.intra_dst, 1));
    split.intra_src = static_cast<TimeNs>(rtt * (base_rtts_.intra_src / total));
    split.inter = static_cast<TimeNs>(rtt * (base_rtts_.inter / total));
    split.intra_dst = rtt - split.intra_src - split.inter;
  }
  split.intra_src = std::max<TimeNs>(split.intra_src, 1);
  split.inter = std::max<TimeNs>(split.inter, 1);
  split.intra_dst = std::max<TimeNs>(split.intra_dst, 1);
  return split;
}

void SegmentedCc::OnAck(const Packet& ack, const IntStack* telemetry, TimeNs rtt, TimeNs now) {
  last_rtts_ = SplitRtt(ack, rtt);
  const TimeNs seg_rtt[kNumSegments] = {last_rtts_.intra_src, last_rtts_.inter,
                                        last_rtts_.intra_dst};

  // Slice the echoed INT stack by hop timestamp: records stamped before the
  // packet reached the source gateway belong to the source fabric, records
  // before the destination gateway (including the source DCI's long-haul
  // egress) to the inter segment, the rest to the receiving fabric.
  IntStack seg_int[kNumSegments];
  const bool have_int = telemetry != nullptr && telemetry->hops > 0;
  if (have_int && ack.gw_src_off != 0 && ack.gw_dst_off != 0) {
    const TimeNs gw_src_ts = ack.sent_ts + static_cast<TimeNs>(ack.gw_src_off);
    const TimeNs gw_dst_ts = ack.sent_ts + static_cast<TimeNs>(ack.gw_dst_off);
    for (uint8_t h = 0; h < telemetry->hops; ++h) {
      const IntRecord& rec = telemetry->rec[h];
      const int seg = rec.ts < gw_src_ts ? kIntraSrc : rec.ts < gw_dst_ts ? kInterDc : kIntraDst;
      if (seg_int[seg].hops < kMaxIntHops) {
        seg_int[seg].rec[seg_int[seg].hops++] = rec;
      }
    }
  } else if (have_int) {
    seg_int[kInterDc] = *telemetry;  // unstamped: attribute everything long-haul
  }

  for (int seg = 0; seg < kNumSegments; ++seg) {
    Packet seg_ack = ack;
    seg_ack.ecn_echo = (ack.ecn_mask & kSegmentBits[seg]) != 0;
    const IntStack* seg_telemetry = seg_int[seg].hops > 0 ? &seg_int[seg] : nullptr;
    segments_[seg]->OnAck(seg_ack, seg_telemetry, seg_rtt[seg], now);
  }
}

void SegmentedCc::OnCnp(TimeNs now, uint8_t ecn_mask) {
  // Route to the marked segment(s); an unattributed CNP hits all of them.
  const uint8_t mask = ecn_mask != 0 ? ecn_mask : (kSegIntraSrc | kSegInterDc | kSegIntraDst);
  for (int seg = 0; seg < kNumSegments; ++seg) {
    if ((mask & kSegmentBits[seg]) != 0) {
      segments_[seg]->OnCnp(now, ecn_mask);
    }
  }
}

void SegmentedCc::OnTimeout(TimeNs now) {
  for (const auto& segment : segments_) {
    segment->OnTimeout(now);
  }
}

int64_t SegmentedCc::rate_bps() const {
  int64_t rate = segments_[0]->rate_bps();
  for (int seg = 1; seg < kNumSegments; ++seg) {
    rate = std::min(rate, segments_[seg]->rate_bps());
  }
  return rate;
}

}  // namespace lcmp
