#include "transport/cc/dcqcn.h"

#include <algorithm>

#include "obs/metrics.h"

namespace lcmp {

void Dcqcn::Init(int64_t line_rate_bps, TimeNs /*base_rtt*/, TimeNs now) {
  line_rate_ = line_rate_bps;
  rate_current_ = line_rate_bps;
  rate_target_ = line_rate_bps;
  alpha_ = 1.0;
  last_alpha_update_ = now;
  last_rate_update_ = now;
}

void Dcqcn::AdvanceTimers(TimeNs now) {
  // Alpha decay: alpha <- (1-g) * alpha each period without a CNP.
  int guard = 0;
  while (now - last_alpha_update_ >= params_.alpha_timer && guard++ < 4096) {
    if (!cnp_since_alpha_timer_) {
      alpha_ *= (1.0 - params_.g);
    }
    cnp_since_alpha_timer_ = false;
    last_alpha_update_ += params_.alpha_timer;
  }
  // Rate increase stages.
  guard = 0;
  while (now - last_rate_update_ >= params_.rate_timer && guard++ < 4096) {
    ++increase_rounds_;
    if (increase_rounds_ > params_.fast_recovery_rounds) {
      // Additive (or hyper after long quiet) increase of the target.
      const bool hyper = increase_rounds_ > 5 * params_.fast_recovery_rounds;
      rate_target_ = std::min(line_rate_,
                              rate_target_ + (hyper ? params_.rhai_bps : params_.rai_bps));
    }
    // Fast recovery toward the target in all stages.
    rate_current_ = (rate_current_ + rate_target_) / 2;
    last_rate_update_ += params_.rate_timer;
  }
  if (guard >= 4096) {
    last_alpha_update_ = now;
    last_rate_update_ = now;
  }
}

void Dcqcn::OnAck(const Packet& /*ack*/, const IntStack* /*telemetry*/, TimeNs /*rtt*/,
                  TimeNs now) {
  AdvanceTimers(now);
}

void Dcqcn::OnCnp(TimeNs now, uint8_t /*ecn_mask*/) {
  // CC objects are per-flow, so the counter handle is a function-local
  // static: one registry lookup per process, all flows share the cell.
  static obs::Counter* m_cnps = obs::MetricsRegistry::Instance().GetCounter("cc.dcqcn.cnps");
  m_cnps->Inc();
  AdvanceTimers(now);
  // Multiplicative decrease and alpha bump (the reaction point algorithm).
  rate_target_ = rate_current_;
  rate_current_ = std::max<int64_t>(
      params_.min_rate_bps, static_cast<int64_t>(rate_current_ * (1.0 - alpha_ / 2.0)));
  alpha_ = (1.0 - params_.g) * alpha_ + params_.g;
  cnp_since_alpha_timer_ = true;
  increase_rounds_ = 0;
  last_rate_update_ = now;
}

void Dcqcn::OnTimeout(TimeNs now) {
  static obs::Counter* m_timeouts =
      obs::MetricsRegistry::Instance().GetCounter("cc.dcqcn.timeouts");
  m_timeouts->Inc();
  // Loss under RoCE is catastrophic; restart gently.
  rate_target_ = rate_current_;
  rate_current_ = std::max(params_.min_rate_bps, rate_current_ / 4);
  increase_rounds_ = 0;
  last_rate_update_ = now;
}

}  // namespace lcmp
