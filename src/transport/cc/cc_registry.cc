#include "transport/cc/cc_registry.h"

#include "common/logging.h"

namespace lcmp {

CcRegistry& CcRegistry::Instance() {
  static CcRegistry* registry = [] {
    auto* r = new CcRegistry();
    // Explicit registration: a pure static-initializer scheme is silently
    // dead-stripped when the algorithm objects sit in a static archive.
    RegisterDcqcnCc(*r);
    RegisterHpccCc(*r);
    RegisterTimelyCc(*r);
    RegisterDctcpCc(*r);
    RegisterLcpCc(*r);
    return r;
  }();
  return *registry;
}

void CcRegistry::Register(const std::string& token, Factory factory, bool needs_int) {
  LCMP_CHECK(!token.empty() && token.find('/') == std::string::npos);
  const auto [it, inserted] = entries_.emplace(token, Entry{std::move(factory), needs_int});
  LCMP_CHECK(inserted);  // duplicate registration is a wiring bug
  (void)it;
  tokens_.push_back(token);
}

bool CcRegistry::Known(const std::string& token) const {
  return entries_.find(token) != entries_.end();
}

std::unique_ptr<CongestionControl> CcRegistry::Create(const std::string& token,
                                                      const CcTuning& tuning) const {
  const auto it = entries_.find(token);
  LCMP_CHECK(it != entries_.end());
  return it->second.factory(tuning);
}

bool CcRegistry::NeedsInt(const std::string& token) const {
  const auto it = entries_.find(token);
  return it != entries_.end() && it->second.needs_int;
}

std::string CcRegistry::TokensJoined() const {
  std::string out;
  for (const std::string& token : tokens_) {
    if (!out.empty()) {
      out += " | ";
    }
    out += token;
  }
  return out;
}

void RegisterDcqcnCc(CcRegistry& registry) {
  registry.Register(
      "dcqcn", [](const CcTuning& t) { return std::make_unique<Dcqcn>(t.dcqcn); },
      /*needs_int=*/false);
}

void RegisterHpccCc(CcRegistry& registry) {
  registry.Register(
      "hpcc", [](const CcTuning& t) { return std::make_unique<Hpcc>(t.hpcc); },
      /*needs_int=*/true);
}

void RegisterTimelyCc(CcRegistry& registry) {
  registry.Register(
      "timely", [](const CcTuning& t) { return std::make_unique<Timely>(t.timely); },
      /*needs_int=*/false);
}

void RegisterDctcpCc(CcRegistry& registry) {
  registry.Register(
      "dctcp", [](const CcTuning& t) { return std::make_unique<Dctcp>(t.dctcp); },
      /*needs_int=*/false);
}

void RegisterLcpCc(CcRegistry& registry) {
  registry.Register(
      "lcp", [](const CcTuning& t) { return std::make_unique<Lcp>(t.lcp); },
      /*needs_int=*/false);
}

bool ParseCcToken(const std::string& text, std::string* token, std::string* error) {
  if (CcRegistry::Instance().Known(text)) {
    *token = text;
    return true;
  }
  if (error != nullptr) {
    *error = "unknown cc '" + text + "' (want " + CcRegistry::Instance().TokensJoined() + ")";
  }
  return false;
}

std::string SegmentCcSpec::Token() const {
  return uniform() ? inter : inter + "/" + intra;
}

bool SegmentCcSpec::Parse(const std::string& text, SegmentCcSpec* out, std::string* error) {
  const size_t slash = text.find('/');
  if (slash == std::string::npos) {
    std::string token;
    if (!ParseCcToken(text, &token, error)) {
      return false;
    }
    out->inter = token;
    out->intra = token;
    return true;
  }
  return ParseCcToken(text.substr(0, slash), &out->inter, error) &&
         ParseCcToken(text.substr(slash + 1), &out->intra, error);
}

bool ApplyLegacyCcFlag(const std::string& legacy, SegmentCcSpec* spec, std::string* error) {
  static bool warned = false;
  if (!warned) {
    warned = true;
    LCMP_WARN("--cc is deprecated; use --cc-inter/--cc-intra (applying '%s' to both segments)",
              legacy.c_str());
  }
  return SegmentCcSpec::Parse(legacy, spec, error);
}

bool CcNeedsInt(const SegmentCcSpec& spec) {
  const CcRegistry& registry = CcRegistry::Instance();
  return registry.NeedsInt(spec.inter) || registry.NeedsInt(spec.intra);
}

}  // namespace lcmp
