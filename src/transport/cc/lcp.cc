#include "transport/cc/lcp.h"

#include <algorithm>

#include "obs/metrics.h"

namespace lcmp {

void Lcp::Init(int64_t line_rate_bps, TimeNs base_rtt, TimeNs now) {
  line_rate_ = line_rate_bps;
  rate_ = line_rate_bps;
  base_rtt_ = std::max<TimeNs>(base_rtt, Microseconds(10));
  min_rtt_ = base_rtt_;
  win_cur_min_ = base_rtt_;
  win_prev_min_ = base_rtt_;
  win_start_ = now;
  ewma_rtt_ = 0.0;
  prev_ewma_rtt_ = 0.0;
  ecn_alpha_ = 0.0;
  marked_since_update_ = false;
  last_update_ = now;
}

void Lcp::OnAck(const Packet& ack, const IntStack* /*telemetry*/, TimeNs rtt, TimeNs now) {
  if (rtt <= 0) {
    return;
  }
  // Windowed min filter: unlike an all-time min, the learned floor may RISE
  // once the samples say the flow's current path is longer than what it
  // measured before (multipath re-steering, see LcpParams). The floor the
  // controller acts on spans the current and previous buckets, so a rotation
  // never briefly reads one queued sample as the new floor.
  const TimeNs win =
      static_cast<TimeNs>(params_.min_rtt_win_rounds) * base_rtt_;
  if (now - win_start_ >= win) {
    win_prev_min_ = win_cur_min_;
    win_cur_min_ = rtt;
    win_start_ = now;
  } else {
    win_cur_min_ = std::min(win_cur_min_, rtt);
  }
  min_rtt_ = std::min(win_cur_min_, win_prev_min_);
  ewma_rtt_ = ewma_rtt_ <= 0.0
                  ? static_cast<double>(rtt)
                  : (1.0 - params_.ewma_g) * ewma_rtt_ + params_.ewma_g * rtt;
  // Per-ACK EWMA of the mark stream: unlike DCTCP's per-window fraction this
  // needs no RTT-aligned boundary, so it stays responsive when one RTT is
  // tens of milliseconds.
  ecn_alpha_ = (1.0 - params_.ecn_g) * ecn_alpha_ + params_.ecn_g * (ack.ecn_echo ? 1.0 : 0.0);
  if (ack.ecn_echo) {
    marked_since_update_ = true;
  }
  UpdateRate(now);
}

void Lcp::UpdateRate(TimeNs now) {
  // Pace the control decisions: at most one rate move per (learned) RTT.
  if (now - last_update_ < min_rtt_) {
    return;
  }
  const double rounds = std::clamp(
      static_cast<double>(now - last_update_) / static_cast<double>(min_rtt_), 1.0, 8.0);
  const double target = static_cast<double>(min_rtt_ + params_.headroom);
  const double gradient = ewma_rtt_ - prev_ewma_rtt_;
  if (ewma_rtt_ > target) {
    // Cut proportionally to the overshoot of the delay budget, bounded so a
    // single decision never halves the rate more than once.
    const double overshoot = (ewma_rtt_ - target) / ewma_rtt_;
    const double factor = std::max(0.5, 1.0 - params_.gain * overshoot);
    rate_ = std::max<int64_t>(params_.min_rate_bps, static_cast<int64_t>(rate_ * factor));
    static obs::Counter* m_cuts =
        obs::MetricsRegistry::Instance().GetCounter("cc.lcp.delay_cuts");
    m_cuts->Inc();
  } else if (marked_since_update_ && ecn_alpha_ > params_.ecn_cut_threshold) {
    // Marking without delay overshoot: a shallow-buffered hop (e.g. the
    // oversubscribed border) is marking before it queues. DCTCP-style cut.
    rate_ = std::max<int64_t>(params_.min_rate_bps,
                              static_cast<int64_t>(rate_ * (1.0 - ecn_alpha_ / 2.0)));
    static obs::Counter* m_ecn_cuts =
        obs::MetricsRegistry::Instance().GetCounter("cc.lcp.ecn_cuts");
    m_ecn_cuts->Inc();
  } else if (gradient <= 0.0) {
    rate_ = std::min(line_rate_,
                     rate_ + static_cast<int64_t>(rounds * static_cast<double>(params_.ai_bps)));
  }
  // Positive gradient inside the budget: hold and watch.
  prev_ewma_rtt_ = ewma_rtt_;
  marked_since_update_ = false;
  last_update_ = now;
}

void Lcp::OnCnp(TimeNs now, uint8_t /*ecn_mask*/) {
  // CNPs are a fabric-scale signal; fold them into the alpha stream so a
  // receiver that only emits CNPs (no echo path) still moves the controller.
  ecn_alpha_ = (1.0 - params_.ecn_g) * ecn_alpha_ + params_.ecn_g;
  marked_since_update_ = true;
  UpdateRate(now);
}

void Lcp::OnTimeout(TimeNs /*now*/) {
  rate_ = std::max(params_.min_rate_bps, rate_ / 4);
  ewma_rtt_ = 0.0;
  prev_ewma_rtt_ = 0.0;
}

}  // namespace lcmp
