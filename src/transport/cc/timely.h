// TIMELY (Mittal et al., SIGCOMM '15): RTT-gradient congestion control.
// Thresholds are offsets over the flow's base RTT so the controller works on
// both microsecond intra-DC and millisecond long-haul paths.
#pragma once

#include "transport/cc/congestion_control.h"

namespace lcmp {

struct TimelyParams {
  TimeNs t_low_offset = Microseconds(50);    // below: additive increase
  TimeNs t_high_offset = Microseconds(500);  // above: multiplicative decrease
  double ewma_alpha = 0.46;                  // gradient smoothing
  double beta = 0.8;                         // decrease factor gain
  int64_t delta_bps = Mbps(100);             // additive step
  int hai_threshold = 5;                     // completed-in-band rounds -> HAI
  int64_t min_rate_bps = Mbps(100);
};

class Timely : public CongestionControl {
 public:
  explicit Timely(const TimelyParams& params = {}) : params_(params) {}

  void Init(int64_t line_rate_bps, TimeNs base_rtt, TimeNs now) override;
  void OnAck(const Packet& ack, const IntStack* telemetry, TimeNs rtt, TimeNs now) override;
  void OnTimeout(TimeNs now) override;
  int64_t rate_bps() const override { return rate_; }
  const char* name() const override { return "timely"; }

 private:
  TimelyParams params_;
  int64_t line_rate_ = 0;
  int64_t rate_ = 0;
  TimeNs base_rtt_ = 0;
  TimeNs prev_rtt_ = 0;
  double rtt_diff_ns_ = 0.0;  // smoothed gradient numerator
  int neg_gradient_rounds_ = 0;
};

}  // namespace lcmp
