// Token-keyed congestion-control registry (the CcFactory redesign).
//
// The old CcKind enum hard-wired four algorithms into switch statements in
// the transport, the harness and every bench binary. The registry replaces
// that with string tokens: each algorithm's .cc registers a factory (and its
// needs-INT flag) through an explicit Register*Cc hook — *explicit* because
// static-initializer self-registration is dead-stripped out of static
// archives — and everything downstream (flags, sweep fields, golden echoes)
// speaks tokens.
//
// SegmentCcSpec is the flow-level assignment: which token runs on the
// long-haul (inter) segment and which inside the end fabrics (intra). A
// uniform spec reproduces the legacy single-instance transport bit for bit;
// a split spec instantiates the SegmentedCc composite (segmented_cc.h).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "transport/cc/congestion_control.h"
#include "transport/cc/dcqcn.h"
#include "transport/cc/dctcp.h"
#include "transport/cc/hpcc.h"
#include "transport/cc/lcp.h"
#include "transport/cc/timely.h"

namespace lcmp {

// Per-algorithm tuning bundle handed to every factory. One struct per kind —
// a factory reads only its own sub-struct, so a single CcTuning can describe
// any algorithm choice (and the harness keeps one per segment).
struct CcTuning {
  DcqcnParams dcqcn;
  HpccParams hpcc;
  TimelyParams timely;
  DctcpParams dctcp;
  LcpParams lcp;
};

class CcRegistry {
 public:
  using Factory = std::function<std::unique_ptr<CongestionControl>(const CcTuning&)>;

  // The process-wide registry with all built-in algorithms registered.
  static CcRegistry& Instance();

  void Register(const std::string& token, Factory factory, bool needs_int);

  bool Known(const std::string& token) const;
  std::unique_ptr<CongestionControl> Create(const std::string& token,
                                            const CcTuning& tuning = {}) const;
  // True when the controller consumes HPCC-style in-band telemetry; the
  // network then stamps INT records on DATA packets.
  bool NeedsInt(const std::string& token) const;
  // Registration-order token list, for usage strings and error messages.
  const std::vector<std::string>& Tokens() const { return tokens_; }
  // "dcqcn | hpcc | timely | dctcp | lcp" for flag help / parse errors.
  std::string TokensJoined() const;

 private:
  CcRegistry() = default;
  struct Entry {
    Factory factory;
    bool needs_int = false;
  };
  std::vector<std::string> tokens_;
  std::map<std::string, Entry> entries_;
};

// Explicit registration hooks, one per algorithm translation unit; invoked
// once by CcRegistry::Instance().
void RegisterDcqcnCc(CcRegistry& registry);
void RegisterHpccCc(CcRegistry& registry);
void RegisterTimelyCc(CcRegistry& registry);
void RegisterDctcpCc(CcRegistry& registry);
void RegisterLcpCc(CcRegistry& registry);

// Parses a single algorithm token ("dcqcn", "lcp", ...); false + *error
// listing the known tokens on anything else.
bool ParseCcToken(const std::string& text, std::string* token, std::string* error);

// A flow's segment-split CC assignment.
struct SegmentCcSpec {
  std::string inter = "dcqcn";  // long-haul segment algorithm
  std::string intra = "dcqcn";  // end-fabric segment algorithm

  bool uniform() const { return inter == intra; }
  // Canonical token: "dcqcn" for uniform specs, "lcp/dcqcn" (inter/intra)
  // for split ones. Round-trips through Parse.
  std::string Token() const;
  // Accepts "tok" (sets both segments — the legacy --cc behavior) or
  // "interTok/intraTok".
  static bool Parse(const std::string& text, SegmentCcSpec* out, std::string* error);

  friend bool operator==(const SegmentCcSpec&, const SegmentCcSpec&) = default;
};

// True when any segment's algorithm needs INT stamping.
bool CcNeedsInt(const SegmentCcSpec& spec);

// The legacy --cc flag's shim: parses `legacy` into *spec (setting BOTH
// segments, the old end-to-end behavior) and warns once per process that the
// flag is deprecated in favor of --cc-inter/--cc-intra.
bool ApplyLegacyCcFlag(const std::string& legacy, SegmentCcSpec* spec, std::string* error);

}  // namespace lcmp
