// DCTCP (Alizadeh et al., SIGCOMM '10) in rate form: the ECN-mark fraction
// over each RTT window drives the alpha estimator; the window's rate is cut
// by alpha/2 when marks were present and grows additively otherwise.
#pragma once

#include "transport/cc/congestion_control.h"

namespace lcmp {

struct DctcpParams {
  double g = 1.0 / 16.0;            // alpha EWMA gain
  int64_t min_rate_bps = Mbps(100);
  int64_t ai_bytes_per_rtt = 4096;  // one MSS of window growth per RTT
};

class Dctcp : public CongestionControl {
 public:
  explicit Dctcp(const DctcpParams& params = {}) : params_(params) {}

  void Init(int64_t line_rate_bps, TimeNs base_rtt, TimeNs now) override;
  void OnAck(const Packet& ack, const IntStack* telemetry, TimeNs rtt, TimeNs now) override;
  void OnTimeout(TimeNs now) override;
  int64_t rate_bps() const override { return rate_; }
  const char* name() const override { return "dctcp"; }

  double alpha() const { return alpha_; }

 private:
  DctcpParams params_;
  int64_t line_rate_ = 0;
  int64_t rate_ = 0;
  TimeNs base_rtt_ = 0;
  double alpha_ = 0.0;
  // Per-window mark accounting.
  TimeNs window_start_ = 0;
  int64_t acked_in_window_ = 0;
  int64_t marked_in_window_ = 0;
};

}  // namespace lcmp
