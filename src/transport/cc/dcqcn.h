// DCQCN (Zhu et al., SIGCOMM '15): ECN-driven rate control for RoCEv2.
//
// Receiver-side CNPs trigger multiplicative decrease through the alpha
// estimator; rate recovers through fast-recovery / additive-increase /
// hyper-increase stages on a timer. Timers are evaluated lazily from packet
// events, which is exact for a rate-based model.
#pragma once

#include "transport/cc/congestion_control.h"

namespace lcmp {

struct DcqcnParams {
  double g = 1.0 / 256.0;           // alpha gain
  TimeNs alpha_timer = Microseconds(55);   // alpha decay period
  TimeNs rate_timer = Microseconds(300);   // increase period
  int fast_recovery_rounds = 5;
  int64_t rai_bps = Mbps(400);      // additive increase step
  int64_t rhai_bps = Gbps(4);       // hyper increase step
  int64_t min_rate_bps = Mbps(100);
};

class Dcqcn : public CongestionControl {
 public:
  explicit Dcqcn(const DcqcnParams& params = {}) : params_(params) {}

  void Init(int64_t line_rate_bps, TimeNs base_rtt, TimeNs now) override;
  void OnAck(const Packet& ack, const IntStack* telemetry, TimeNs rtt, TimeNs now) override;
  void OnCnp(TimeNs now, uint8_t ecn_mask = 0) override;
  void OnTimeout(TimeNs now) override;
  int64_t rate_bps() const override { return rate_current_; }
  const char* name() const override { return "dcqcn"; }

  double alpha() const { return alpha_; }

 private:
  void AdvanceTimers(TimeNs now);

  DcqcnParams params_;
  int64_t line_rate_ = 0;
  int64_t rate_current_ = 0;
  int64_t rate_target_ = 0;
  double alpha_ = 1.0;
  bool cnp_since_alpha_timer_ = false;
  int increase_rounds_ = 0;  // since last decrease
  TimeNs last_alpha_update_ = 0;
  TimeNs last_rate_update_ = 0;
};

}  // namespace lcmp
