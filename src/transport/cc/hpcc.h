// HPCC (Li et al., SIGCOMM '19): in-band-telemetry-driven congestion
// control. Every ACK echoes per-hop INT records (queue depth, link rate,
// cumulative TX bytes, timestamp); the sender computes the max per-hop
// utilization U and steers its rate toward eta * line capacity.
#pragma once

#include <array>

#include "sim/int_pool.h"
#include "transport/cc/congestion_control.h"

namespace lcmp {

struct HpccParams {
  double eta = 0.95;            // target utilization
  double max_stage_gain = 0.5;  // max multiplicative cut per update
  int64_t wai_bps = Mbps(200);  // additive probe
  int64_t min_rate_bps = Mbps(100);
};

class Hpcc : public CongestionControl {
 public:
  explicit Hpcc(const HpccParams& params = {}) : params_(params) {}

  void Init(int64_t line_rate_bps, TimeNs base_rtt, TimeNs now) override;
  void OnAck(const Packet& ack, const IntStack* telemetry, TimeNs rtt, TimeNs now) override;
  void OnTimeout(TimeNs now) override;
  int64_t rate_bps() const override { return rate_; }
  const char* name() const override { return "hpcc"; }

 private:
  HpccParams params_;
  int64_t line_rate_ = 0;
  int64_t rate_ = 0;
  TimeNs base_rtt_ = 0;
  // Previous INT snapshot, to differentiate txBytes into per-hop rates.
  // Copied out of the pooled stack: the pool slot is recycled as soon as the
  // ACK is consumed, so the controller cannot hold a handle across ACKs.
  bool have_prev_ = false;
  IntStack prev_{};
};

}  // namespace lcmp
