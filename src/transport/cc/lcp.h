// LCP: delay-based long-haul congestion control (after the LCP/BBR-style
// inter-DC stacks surveyed in PAPERS.md, e.g. Uno's cross-DCI controller).
//
// DCQCN's CNP loop is sized for microsecond fabrics: over a multi-millisecond
// InterDCDelay the notification arrives many BDPs late and the alpha timer
// decays long before the next CNP, so the controller oscillates between line
// rate and deep cuts. LCP instead watches the *delay* signal that every ACK
// already carries: an EWMA of the RTT samples is compared against a learned
// minimum plus a queueing-headroom budget, and the rate is cut
// proportionally to the overshoot (at most once per RTT) or grown additively
// when the smoothed delay sits inside the budget with a non-positive
// gradient. ECN is folded in as a per-ACK EWMA mark fraction (alpha) — no
// window boundary, so the estimate tracks marking at long-haul RTT scale —
// and triggers a DCTCP-style alpha/2 cut when delay alone has not reacted.
#pragma once

#include "transport/cc/congestion_control.h"

namespace lcmp {

struct LcpParams {
  double gain = 0.4;                    // MD gain on target overshoot
  double ewma_g = 1.0 / 8.0;            // RTT EWMA gain
  double ecn_g = 1.0 / 16.0;            // per-ACK ECN alpha EWMA gain
  double ecn_cut_threshold = 0.125;     // alpha above this forces a cut
  TimeNs headroom = Microseconds(150);  // queueing budget over the base RTT
  int64_t ai_bps = Mbps(200);           // additive probe per RTT round
  int64_t min_rate_bps = Mbps(100);
  // Windowed min-RTT filter length, in base-RTT rounds. A multipath policy
  // (LCMP's cost-aware spreading) can place or re-steer a flow onto a path
  // whose propagation exceeds the minimal-path base RTT by milliseconds; an
  // all-time min filter then reads that detour as a standing queue and pins
  // the rate at the floor forever. Rotating the filter (BBR/Swift style)
  // re-learns the floor within a couple of windows after a path change.
  int min_rtt_win_rounds = 8;
};

class Lcp : public CongestionControl {
 public:
  explicit Lcp(const LcpParams& params = {}) : params_(params) {}

  void Init(int64_t line_rate_bps, TimeNs base_rtt, TimeNs now) override;
  void OnAck(const Packet& ack, const IntStack* telemetry, TimeNs rtt, TimeNs now) override;
  void OnCnp(TimeNs now, uint8_t ecn_mask = 0) override;
  void OnTimeout(TimeNs now) override;
  int64_t rate_bps() const override { return rate_; }
  const char* name() const override { return "lcp"; }

  double ecn_alpha() const { return ecn_alpha_; }
  TimeNs smoothed_rtt() const { return static_cast<TimeNs>(ewma_rtt_); }
  TimeNs min_rtt() const { return min_rtt_; }

 private:
  void UpdateRate(TimeNs now);

  LcpParams params_;
  int64_t line_rate_ = 0;
  int64_t rate_ = 0;
  TimeNs base_rtt_ = 0;
  TimeNs min_rtt_ = 0;        // learned floor: min over the two-bucket window
  // Two-bucket rotating min filter behind min_rtt_: the current and previous
  // window minima, rotated every min_rtt_win_rounds * base_rtt.
  TimeNs win_cur_min_ = 0;
  TimeNs win_prev_min_ = 0;
  TimeNs win_start_ = 0;
  double ewma_rtt_ = 0.0;     // smoothed delay
  double prev_ewma_rtt_ = 0.0;  // smoothed delay at the last rate update
  double ecn_alpha_ = 0.0;    // per-ACK EWMA ECN mark fraction
  bool marked_since_update_ = false;
  TimeNs last_update_ = 0;
};

}  // namespace lcmp
