#include "transport/cc/timely.h"

#include <algorithm>

#include "obs/metrics.h"

namespace lcmp {

void Timely::Init(int64_t line_rate_bps, TimeNs base_rtt, TimeNs /*now*/) {
  line_rate_ = line_rate_bps;
  rate_ = line_rate_bps;
  base_rtt_ = std::max<TimeNs>(base_rtt, Microseconds(10));
  prev_rtt_ = 0;
}

void Timely::OnAck(const Packet& /*ack*/, const IntStack* /*telemetry*/, TimeNs rtt,
                   TimeNs /*now*/) {
  if (rtt <= 0) {
    return;
  }
  if (prev_rtt_ == 0) {
    prev_rtt_ = rtt;
    return;
  }
  const double new_diff = static_cast<double>(rtt - prev_rtt_);
  prev_rtt_ = rtt;
  rtt_diff_ns_ = (1.0 - params_.ewma_alpha) * rtt_diff_ns_ + params_.ewma_alpha * new_diff;
  // Normalize the gradient by a minimal-RTT scale; TIMELY uses minRTT, which
  // over long haul is dominated by propagation, so queueing gradients stay
  // detectable when normalized by the *queueing* scale (t_high offset).
  const double norm = static_cast<double>(params_.t_high_offset);
  const double gradient = rtt_diff_ns_ / norm;

  const TimeNs queuing = rtt - base_rtt_;
  if (queuing < params_.t_low_offset) {
    rate_ = std::min(line_rate_, rate_ + params_.delta_bps);
    return;
  }
  if (queuing > params_.t_high_offset) {
    const double f = 1.0 - params_.beta *
                               (1.0 - static_cast<double>(params_.t_high_offset) /
                                          static_cast<double>(queuing));
    rate_ = std::max<int64_t>(params_.min_rate_bps, static_cast<int64_t>(rate_ * f));
    neg_gradient_rounds_ = 0;
    static obs::Counter* m_thigh =
        obs::MetricsRegistry::Instance().GetCounter("cc.timely.t_high_decreases");
    m_thigh->Inc();
    return;
  }
  if (gradient <= 0) {
    ++neg_gradient_rounds_;
    const int n = neg_gradient_rounds_ >= params_.hai_threshold ? 5 : 1;
    rate_ = std::min(line_rate_, rate_ + n * params_.delta_bps);
  } else {
    neg_gradient_rounds_ = 0;
    const double f = 1.0 - params_.beta * std::min(gradient, 1.0);
    rate_ = std::max<int64_t>(params_.min_rate_bps, static_cast<int64_t>(rate_ * f));
    static obs::Counter* m_grad =
        obs::MetricsRegistry::Instance().GetCounter("cc.timely.gradient_decreases");
    m_grad->Inc();
  }
}

void Timely::OnTimeout(TimeNs /*now*/) {
  rate_ = std::max(params_.min_rate_bps, rate_ / 2);
  neg_gradient_rounds_ = 0;
}

}  // namespace lcmp
