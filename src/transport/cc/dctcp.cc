#include "transport/cc/dctcp.h"

#include <algorithm>

#include "obs/metrics.h"

namespace lcmp {

void Dctcp::Init(int64_t line_rate_bps, TimeNs base_rtt, TimeNs now) {
  line_rate_ = line_rate_bps;
  rate_ = line_rate_bps;
  base_rtt_ = std::max<TimeNs>(base_rtt, Microseconds(10));
  window_start_ = now;
}

void Dctcp::OnAck(const Packet& ack, const IntStack* /*telemetry*/, TimeNs rtt, TimeNs now) {
  ++acked_in_window_;
  if (ack.ecn_echo) {
    ++marked_in_window_;
  }
  // Window boundary: roughly one (measured) RTT of ACKs.
  const TimeNs window = std::max(base_rtt_, rtt);
  if (now - window_start_ < window || acked_in_window_ == 0) {
    return;
  }
  const double frac = static_cast<double>(marked_in_window_) /
                      static_cast<double>(acked_in_window_);
  alpha_ = (1.0 - params_.g) * alpha_ + params_.g * frac;
  static obs::Counter* m_windows =
      obs::MetricsRegistry::Instance().GetCounter("cc.dctcp.window_updates");
  m_windows->Inc();
  if (marked_in_window_ > 0) {
    rate_ = std::max<int64_t>(params_.min_rate_bps,
                              static_cast<int64_t>(rate_ * (1.0 - alpha_ / 2.0)));
    static obs::Counter* m_decreases =
        obs::MetricsRegistry::Instance().GetCounter("cc.dctcp.marked_decreases");
    m_decreases->Inc();
  } else {
    // Additive increase: one MSS of window per RTT expressed as rate.
    const int64_t ai_bps = params_.ai_bytes_per_rtt * 8 * kNsPerSec / base_rtt_;
    rate_ = std::min(line_rate_, rate_ + std::max<int64_t>(ai_bps, Mbps(1)));
  }
  window_start_ = now;
  acked_in_window_ = 0;
  marked_in_window_ = 0;
}

void Dctcp::OnTimeout(TimeNs /*now*/) {
  rate_ = std::max(params_.min_rate_bps, rate_ / 2);
}

}  // namespace lcmp
