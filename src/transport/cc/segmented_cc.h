// SegmentedCc: a composite CongestionControl that splits a cross-DC flow at
// the gateways into intra-source, inter-DC and intra-destination segments,
// each driven by its own controller (DESIGN.md §14).
//
// The effective send rate is the min of the segment rates — the flow is a
// chain, so the tightest segment governs. Feedback is demultiplexed by where
// it happened: ACKs carry the gateway stamps (Packet::gw_src_off/gw_dst_off)
// that split the measured whole-path RTT into exact per-segment round trips,
// the ECN echo is routed by Packet::ecn_mask (which segment(s) marked), and
// the echoed HPCC INT stack is sliced into per-segment sub-stacks by hop
// timestamp. CNPs route by the same mask; timeouts (Go-Back-N engaged, the
// segment at fault unknown) fan out to all three.
#pragma once

#include <memory>
#include <string>

#include "sim/int_pool.h"
#include "transport/cc/congestion_control.h"

namespace lcmp {

// Unloaded per-segment round trips, computed by the transport from the path
// oracle (host -> source DCI, source DCI -> dest DCI, dest DCI -> host).
struct SegmentBaseRtts {
  TimeNs intra_src = 0;
  TimeNs inter = 0;
  TimeNs intra_dst = 0;
};

// One flow's measured per-segment RTT split (for tests / metrics).
struct SegmentRtts {
  TimeNs intra_src = 0;
  TimeNs inter = 0;
  TimeNs intra_dst = 0;
};

class SegmentedCc : public CongestionControl {
 public:
  // Segment index order everywhere: 0 = intra-source, 1 = inter-DC,
  // 2 = intra-destination.
  static constexpr int kIntraSrc = 0;
  static constexpr int kInterDc = 1;
  static constexpr int kIntraDst = 2;
  static constexpr int kNumSegments = 3;

  SegmentedCc(std::unique_ptr<CongestionControl> intra_src,
              std::unique_ptr<CongestionControl> inter,
              std::unique_ptr<CongestionControl> intra_dst, const SegmentBaseRtts& base_rtts,
              std::string name);

  void Init(int64_t line_rate_bps, TimeNs base_rtt, TimeNs now) override;
  void OnAck(const Packet& ack, const IntStack* telemetry, TimeNs rtt, TimeNs now) override;
  void OnCnp(TimeNs now, uint8_t ecn_mask = 0) override;
  void OnTimeout(TimeNs now) override;
  int64_t rate_bps() const override;
  const char* name() const override { return name_.c_str(); }

  const CongestionControl* segment(int idx) const { return segments_[idx].get(); }
  // The per-segment split of the most recent ACK's RTT (test hook).
  const SegmentRtts& last_rtts() const { return last_rtts_; }

 private:
  // Splits a measured whole-path RTT by the ACK's gateway stamps; falls back
  // to a base-RTT-proportional split when the stamps are missing.
  SegmentRtts SplitRtt(const Packet& ack, TimeNs rtt) const;

  std::unique_ptr<CongestionControl> segments_[kNumSegments];
  SegmentBaseRtts base_rtts_;
  std::string name_;
  SegmentRtts last_rtts_;
};

}  // namespace lcmp
