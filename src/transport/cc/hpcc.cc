#include "transport/cc/hpcc.h"

#include <algorithm>

#include "obs/metrics.h"

namespace lcmp {

void Hpcc::Init(int64_t line_rate_bps, TimeNs base_rtt, TimeNs /*now*/) {
  line_rate_ = line_rate_bps;
  rate_ = line_rate_bps;
  base_rtt_ = std::max<TimeNs>(base_rtt, Microseconds(10));
  have_prev_ = false;
}

void Hpcc::OnAck(const Packet& /*ack*/, const IntStack* telemetry, TimeNs /*rtt*/,
                 TimeNs /*now*/) {
  if (telemetry == nullptr || telemetry->hops == 0) {
    return;  // telemetry absent (e.g., intra-DC shortcut); keep current rate
  }
  static obs::Counter* m_int_updates =
      obs::MetricsRegistry::Instance().GetCounter("cc.hpcc.int_updates");
  m_int_updates->Inc();
  // U = max over hops of (qlen / (B * T_base) + txRate / B).
  double max_u = 0.0;
  for (uint8_t h = 0; h < telemetry->hops; ++h) {
    const IntRecord& cur = telemetry->rec[h];
    if (cur.rate_bps <= 0) {
      continue;
    }
    const double bdp_bytes = static_cast<double>(cur.rate_bps) / 8.0 *
                             static_cast<double>(base_rtt_) / kNsPerSec;
    double u = bdp_bytes > 0 ? static_cast<double>(cur.qlen_bytes) / bdp_bytes : 0.0;
    if (have_prev_ && h < prev_.hops) {
      const IntRecord& prev = prev_.rec[h];
      const TimeNs dt = cur.ts - prev.ts;
      if (dt > 0 && cur.tx_bytes >= prev.tx_bytes) {
        const double tx_rate_bps =
            static_cast<double>(cur.tx_bytes - prev.tx_bytes) * 8.0 * kNsPerSec /
            static_cast<double>(dt);
        u += tx_rate_bps / static_cast<double>(cur.rate_bps);
      }
    }
    max_u = std::max(max_u, u);
  }
  prev_ = *telemetry;
  have_prev_ = true;

  if (max_u > params_.eta) {
    // Multiplicative move toward the target utilization, bounded per update.
    const double factor = std::max(params_.max_stage_gain, params_.eta / max_u);
    rate_ = std::max<int64_t>(params_.min_rate_bps, static_cast<int64_t>(rate_ * factor));
    static obs::Counter* m_decreases =
        obs::MetricsRegistry::Instance().GetCounter("cc.hpcc.decreases");
    m_decreases->Inc();
  } else {
    rate_ = std::min(line_rate_, rate_ + params_.wai_bps);
  }
}

void Hpcc::OnTimeout(TimeNs /*now*/) {
  rate_ = std::max(params_.min_rate_bps, rate_ / 2);
  have_prev_ = false;
}

}  // namespace lcmp
