#include "transport/cc/congestion_control.h"

#include "transport/cc/dcqcn.h"
#include "transport/cc/dctcp.h"
#include "transport/cc/hpcc.h"
#include "transport/cc/timely.h"

namespace lcmp {

const char* CcKindName(CcKind kind) {
  switch (kind) {
    case CcKind::kDcqcn:
      return "dcqcn";
    case CcKind::kHpcc:
      return "hpcc";
    case CcKind::kTimely:
      return "timely";
    case CcKind::kDctcp:
      return "dctcp";
  }
  return "?";
}

CcFactory MakeCcFactory(CcKind kind) {
  switch (kind) {
    case CcKind::kDcqcn:
      return [] { return std::make_unique<Dcqcn>(); };
    case CcKind::kHpcc:
      return [] { return std::make_unique<Hpcc>(); };
    case CcKind::kTimely:
      return [] { return std::make_unique<Timely>(); };
    case CcKind::kDctcp:
      return [] { return std::make_unique<Dctcp>(); };
  }
  return [] { return std::make_unique<Dcqcn>(); };
}

bool CcNeedsInt(CcKind kind) { return kind == CcKind::kHpcc; }

}  // namespace lcmp
