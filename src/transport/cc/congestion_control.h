// End-host congestion-control interface (Sec. 6.3.2 evaluates DCQCN, HPCC,
// TIMELY and DCTCP; LCMP is orthogonal to all of them).
//
// All controllers are rate-based: the transport paces DATA packets at
// rate_bps() and feeds back ACK / CNP / timeout events. This is the standard
// modeling used by the DCQCN/HPCC simulation studies.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/types.h"
#include "sim/packet.h"

namespace lcmp {

struct IntStack;

enum class CcKind : uint8_t { kDcqcn, kHpcc, kTimely, kDctcp };

const char* CcKindName(CcKind kind);

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  // Called once before the first packet. `line_rate_bps` is the NIC rate,
  // `base_rtt` the unloaded round-trip of the flow's best path.
  virtual void Init(int64_t line_rate_bps, TimeNs base_rtt, TimeNs now) = 0;

  // Cumulative ACK arrived. `ack` carries the ECN echo (DCTCP) and
  // timestamps; `rtt` is the measured sample. `telemetry` is the echoed INT
  // stack the ACK references (HPCC), resolved from the network's pool by the
  // transport, or nullptr when the ACK carries none.
  virtual void OnAck(const Packet& ack, const IntStack* telemetry, TimeNs rtt, TimeNs now) = 0;

  // DCQCN congestion-notification packet arrived.
  virtual void OnCnp(TimeNs /*now*/) {}

  // Retransmission timeout fired (Go-Back-N recovery engaged).
  virtual void OnTimeout(TimeNs /*now*/) {}

  // Current sending rate the transport must pace at.
  virtual int64_t rate_bps() const = 0;

  virtual const char* name() const = 0;
};

using CcFactory = std::function<std::unique_ptr<CongestionControl>()>;

// Factory for the built-in controllers with their default parameters.
CcFactory MakeCcFactory(CcKind kind);

// True when the controller consumes HPCC-style in-band telemetry; the
// network then stamps INT records on DATA packets.
bool CcNeedsInt(CcKind kind);

}  // namespace lcmp
