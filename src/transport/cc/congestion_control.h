// End-host congestion-control interface (Sec. 6.3.2 evaluates DCQCN, HPCC,
// TIMELY and DCTCP; LCMP is orthogonal to all of them).
//
// All controllers are rate-based: the transport paces DATA packets at
// rate_bps() and feeds back ACK / CNP / timeout events. This is the standard
// modeling used by the DCQCN/HPCC simulation studies.
//
// Controllers are constructed through the token-keyed CcRegistry
// (cc_registry.h); a flow that crosses the DC border may run a *different*
// algorithm per segment via the SegmentedCc composite (segmented_cc.h).
#pragma once

#include <cstdint>

#include "common/types.h"
#include "sim/packet.h"

namespace lcmp {

struct IntStack;

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  // Called once before the first packet. `line_rate_bps` is the NIC rate,
  // `base_rtt` the unloaded round-trip of the controlled segment (the whole
  // flow path for a plain controller, one segment under SegmentedCc).
  virtual void Init(int64_t line_rate_bps, TimeNs base_rtt, TimeNs now) = 0;

  // Cumulative ACK arrived. `ack` carries the ECN echo (DCTCP) and
  // timestamps; `rtt` is the measured sample. `telemetry` is the echoed INT
  // stack the ACK references (HPCC), resolved from the network's pool by the
  // transport, or nullptr when the ACK carries none.
  virtual void OnAck(const Packet& ack, const IntStack* telemetry, TimeNs rtt, TimeNs now) = 0;

  // DCQCN congestion-notification packet arrived. `ecn_mask` is the OR of
  // kSeg* bits recording which CC segment(s) the underlying ECN marks
  // happened in (0 when unknown); plain controllers ignore it, SegmentedCc
  // routes the CNP to the marked segments.
  virtual void OnCnp(TimeNs /*now*/, uint8_t /*ecn_mask*/ = 0) {}

  // Retransmission timeout fired (Go-Back-N recovery engaged).
  virtual void OnTimeout(TimeNs /*now*/) {}

  // Current sending rate the transport must pace at.
  virtual int64_t rate_bps() const = 0;

  virtual const char* name() const = 0;
};

}  // namespace lcmp
