// Fixed-size sequence-number window backed by a ring bitmap.
//
// Replaces the per-flow std::set<uint32_t> out-of-order tracker: the set
// heap-allocates a red-black node per buffered segment and costs O(log n)
// per arrival on the packet hot path, while this structure is one vector
// sized once at flow registration (single-threaded setup) and every runtime
// operation is allocation-free — bench/events_hotpath pins that with a
// before/after allocation assertion.
//
// The window covers [base, base + capacity). Bits are ring-indexed by
// seq & (capacity - 1) (capacity is rounded up to a power of two), which is
// collision-free because every tracked seq lies within one capacity of base.
// Used by the receiver (base == next expected segment, bits == buffered
// out-of-order segments) and by the IRN sender (base == cumulative ack,
// bits == pending selective retransmits).
#pragma once

#include <cstdint>
#include <vector>

namespace lcmp {

class SeqWindow {
 public:
  static constexpr uint32_t kNone = UINT32_MAX;

  // Allocates the bitmap (the only allocation this class ever performs) and
  // empties the window. Call during flow registration, never from events.
  void Reset(uint32_t base, uint32_t capacity_segments) {
    capacity_ = 64;
    while (capacity_ < capacity_segments) {
      capacity_ <<= 1;
    }
    bits_.assign(capacity_ / 64, 0);
    base_ = base;
    count_ = 0;
  }

  bool allocated() const { return !bits_.empty(); }
  uint32_t base() const { return base_; }
  uint32_t capacity() const { return capacity_; }
  int count() const { return count_; }

  bool InWindow(uint32_t seq) const { return seq >= base_ && seq - base_ < capacity_; }

  bool Test(uint32_t seq) const {
    if (!InWindow(seq)) {
      return false;
    }
    const uint32_t slot = seq & (capacity_ - 1);
    return (bits_[slot >> 6] >> (slot & 63)) & 1;
  }

  // Sets the bit for `seq`. Returns true when the bit was newly set, false
  // when out of window or already present.
  bool Insert(uint32_t seq) {
    if (!InWindow(seq) || Test(seq)) {
      return false;
    }
    const uint32_t slot = seq & (capacity_ - 1);
    bits_[slot >> 6] |= uint64_t{1} << (slot & 63);
    ++count_;
    return true;
  }

  // Clears the bit for `seq` if set; returns whether it was set.
  bool TakeIfSet(uint32_t seq) {
    if (!Test(seq)) {
      return false;
    }
    const uint32_t slot = seq & (capacity_ - 1);
    bits_[slot >> 6] &= ~(uint64_t{1} << (slot & 63));
    --count_;
    return true;
  }

  // Moves the window start forward to `new_base`, discarding any bits below
  // it. No-op when new_base <= base.
  void AdvanceBaseTo(uint32_t new_base) {
    if (new_base <= base_) {
      return;
    }
    if (count_ > 0) {
      const uint32_t span = new_base - base_ < capacity_ ? new_base - base_ : capacity_;
      for (uint32_t s = base_; s != base_ + span; ++s) {
        TakeIfSet(s);
      }
    }
    base_ = new_base;
  }

  // Lowest tracked seq >= base, or kNone when the window is empty. Word-wise
  // scan in ring order starting at base's slot: O(capacity / 64).
  uint32_t FirstSet() const {
    if (count_ == 0) {
      return kNone;
    }
    const uint32_t start = base_ & (capacity_ - 1);
    const uint32_t words = capacity_ / 64;
    for (uint32_t w = 0; w < words; ++w) {
      const uint32_t wi = ((start >> 6) + w) % words;
      uint64_t bits = bits_[wi];
      if (w == 0) {
        bits &= ~uint64_t{0} << (start & 63);  // slots before base wrap around
      }
      if (bits != 0) {
        const uint32_t slot = (wi << 6) + static_cast<uint32_t>(__builtin_ctzll(bits));
        // Ring slot -> absolute seq: slots at/after base's slot are in the
        // first lap, slots before it belong to the wrapped tail.
        return slot >= start ? base_ + (slot - start) : base_ + (capacity_ - start) + slot;
      }
    }
    // Only the wrapped tail of base's own word remains (slots below start).
    const uint64_t tail = bits_[start >> 6] & ((start & 63) != 0
                                                  ? (uint64_t{1} << (start & 63)) - 1
                                                  : 0);
    if (tail != 0) {
      const uint32_t slot = ((start >> 6) << 6) + static_cast<uint32_t>(__builtin_ctzll(tail));
      return base_ + (capacity_ - start) + slot;
    }
    return kNone;
  }

  // FirstSet() + clear, for the sender's retransmit queue.
  uint32_t PopFirst() {
    const uint32_t seq = FirstSet();
    if (seq != kNone) {
      TakeIfSet(seq);
    }
    return seq;
  }

  // Drops every tracked bit without touching base (IRN RTO recovery).
  void ClearAll() {
    if (count_ > 0) {
      for (uint64_t& w : bits_) {
        w = 0;
      }
      count_ = 0;
    }
  }

 private:
  std::vector<uint64_t> bits_;
  uint32_t base_ = 0;
  uint32_t capacity_ = 0;
  int count_ = 0;
};

}  // namespace lcmp
