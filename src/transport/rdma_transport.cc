#include "transport/rdma_transport.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace lcmp {
namespace {

// Shared transport-wide metric cells (one registry lookup per process).
struct TransportMetrics {
  obs::Counter* data_sent;
  obs::Counter* retransmits;
  obs::Counter* timeouts;
  obs::Counter* nacks;
  obs::Counter* cnps;
  obs::Counter* flows_completed;
  // Last CC rate set by any flow's rate change, (ts, key)-stamped; the
  // control plane's telemetry sweep samples it into the lcmp.cc.rate_bps
  // time series.
  obs::Gauge* cc_rate;
  // Per-segment last rates (split cross-DC flows only), sampled into the
  // lcmp.cc.{intra_src,inter,intra_dst}_rate_bps time series.
  obs::Gauge* cc_rate_intra_src;
  obs::Gauge* cc_rate_inter;
  obs::Gauge* cc_rate_intra_dst;
  static TransportMetrics& Get() {
    static TransportMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
      TransportMetrics t;
      t.data_sent = reg.GetCounter("transport.data_packets_sent");
      t.retransmits = reg.GetCounter("transport.retransmitted_packets");
      t.timeouts = reg.GetCounter("transport.timeouts");
      t.nacks = reg.GetCounter("transport.nacks");
      t.cnps = reg.GetCounter("transport.cnps");
      t.flows_completed = reg.GetCounter("transport.flows_completed");
      t.cc_rate = reg.GetGauge("transport.cc.last_rate_bps");
      t.cc_rate_intra_src = reg.GetGauge("transport.cc.intra_src_rate_bps");
      t.cc_rate_inter = reg.GetGauge("transport.cc.inter_rate_bps");
      t.cc_rate_intra_dst = reg.GetGauge("transport.cc.intra_dst_rate_bps");
      return t;
    }();
    return m;
  }
};

// Exports the flow's current per-segment rates (TransportMetrics gauges).
void SetSegmentGauges(const SegmentedCc& cc) {
  TransportMetrics& m = TransportMetrics::Get();
  m.cc_rate_intra_src->Set(cc.segment(SegmentedCc::kIntraSrc)->rate_bps());
  m.cc_rate_inter->Set(cc.segment(SegmentedCc::kInterDc)->rate_bps());
  m.cc_rate_intra_dst->Set(cc.segment(SegmentedCc::kIntraDst)->rate_bps());
}

}  // namespace

RdmaTransport::RdmaTransport(Network* net, const TransportConfig& config,
                             CompletionFn on_complete)
    : net_(net),
      config_(config),
      on_complete_(std::move(on_complete)),
      oracle_(&net->graph()) {
  // Deprecated alias: ooo_tolerance was the bench hack that grew into the
  // IRN mode; configs that still set it get the first-class implementation.
  if (config_.ooo_tolerance) {
    config_.reliability = ReliabilityMode::kIrn;
  }
  LCMP_CHECK(CcRegistry::Instance().Known(config_.cc.inter));
  LCMP_CHECK(CcRegistry::Instance().Known(config_.cc.intra));
  // Emulation mode mutates per-host pipeline cursors at runtime; it is a
  // single-shard feature (the harness rejects the combination up front).
  LCMP_CHECK(net_->num_shards() == 1 || !config_.emulation_mode);
  // Register as the packet sink of every host.
  const Graph& g = net_->graph();
  for (NodeId id = 0; id < g.num_vertices(); ++id) {
    if (g.vertex(id).kind == VertexKind::kHost) {
      net_->host(id).SetSink([this, id](Packet pkt) { OnHostReceive(id, std::move(pkt)); });
    }
  }
}

int64_t RdmaTransport::LineRate(NodeId host) const {
  const Port& nic = net_->host(host).port(0);
  int64_t rate = nic.rate_bps();
  if (config_.emulation_mode) {
    rate = std::min(rate, config_.emu_rate_cap_bps);
  }
  return rate;
}

TimeNs RdmaTransport::HostOverhead(NodeId host) {
  if (!config_.emulation_mode) {
    return 0;
  }
  // SoftRoCE software stack: per-packet processing latency with jitter.
  HostNode& h = net_->host(host);
  const double sample = h.rng().NextGaussian(static_cast<double>(config_.emu_overhead_mean),
                                             static_cast<double>(config_.emu_overhead_stddev));
  return std::max<TimeNs>(static_cast<TimeNs>(sample), Microseconds(1));
}

TimeNs RdmaTransport::EmuPipelineSlot(std::unordered_map<NodeId, TimeNs>& ready, NodeId host) {
  const TimeNs now = net_->sim().now();
  TimeNs slot = now + HostOverhead(host);
  TimeNs& cursor = ready[host];
  slot = std::max(slot, cursor + 1);  // strictly increasing: FIFO per host
  cursor = slot;
  return slot;
}

void RdmaTransport::RegisterFlow(const FlowSpec& spec) {
  // Pre-size the per-flow maps during single-threaded setup so sharded runs
  // never mutate them from worker threads, and warm the path-metric cache so
  // runtime lookups are read-only.
  Sender& s = senders_[spec.id];
  s.spec = spec;
  Receiver& r = receivers_[spec.id];
  if (Irn()) {
    // Bitmap windows are the only transport state that allocates; doing it
    // here keeps the packet hot path allocation-free and shard-safe (setup
    // is single-threaded, events only flip bits).
    const uint32_t window = static_cast<uint32_t>(std::max(config_.ooo_window_segments, 1));
    if (!s.rtx.allocated()) {
      s.rtx.Reset(0, window);
    }
    if (!r.ooo.allocated()) {
      r.ooo.Reset(0, window);
    }
  }
  oracle_.Metric(spec.src, spec.dst);
  // Split cross-DC flows also consult the per-segment metrics at StartFlow
  // (which runs on the flow's home shard): warm those cache rows here too.
  const Graph& g = net_->graph();
  const DcId src_dc = g.vertex(spec.src).dc;
  const DcId dst_dc = g.vertex(spec.dst).dc;
  if (!config_.cc.uniform() && src_dc != dst_dc) {
    const NodeId src_dci = g.DciOfDc(src_dc);
    const NodeId dst_dci = g.DciOfDc(dst_dc);
    if (src_dci != kInvalidNode && dst_dci != kInvalidNode) {
      oracle_.Metric(spec.src, src_dci);
      oracle_.Metric(src_dci, dst_dci);
      oracle_.Metric(dst_dci, spec.dst);
    }
  }
}

std::unique_ptr<CongestionControl> RdmaTransport::BuildCc(const FlowSpec& spec,
                                                          TimeNs whole_path_base_rtt) {
  const CcRegistry& registry = CcRegistry::Instance();
  const Graph& g = net_->graph();
  const DcId src_dc = g.vertex(spec.src).dc;
  const DcId dst_dc = g.vertex(spec.dst).dc;
  if (src_dc == dst_dc) {
    // The flow never crosses the border: the intra algorithm runs end to end.
    return registry.Create(config_.cc.intra, config_.cc_intra);
  }
  if (config_.cc.uniform()) {
    // Legacy single-instance path: one controller over the whole route.
    return registry.Create(config_.cc.inter, config_.cc_inter);
  }
  const NodeId src_dci = g.DciOfDc(src_dc);
  const NodeId dst_dci = g.DciOfDc(dst_dc);
  if (src_dci == kInvalidNode || dst_dci == kInvalidNode) {
    // No gateway to split at (degenerate topology): long-haul rules apply.
    return registry.Create(config_.cc.inter, config_.cc_inter);
  }
  // Per-segment unloaded round trips from the path oracle; each includes one
  // MTU of serialization at its own bottleneck, mirroring the whole-path
  // base-RTT recipe in StartFlow.
  const auto seg_rtt = [&](NodeId from, NodeId to) -> TimeNs {
    const PathMetric& m = oracle_.Metric(from, to);
    const TimeNs ser = SerializationDelay(config_.mtu_payload + kHeaderBytes,
                                          std::max<int64_t>(m.bottleneck_bps, 1));
    return 2 * m.delay_ns + ser;
  };
  SegmentBaseRtts base;
  base.intra_src = seg_rtt(spec.src, src_dci);
  base.inter = seg_rtt(src_dci, dst_dci);
  base.intra_dst = seg_rtt(dst_dci, spec.dst);
  if (base.inter <= 0) {
    base.inter = whole_path_base_rtt;  // oracle blind spot; never split-worse
  }
  return std::make_unique<SegmentedCc>(registry.Create(config_.cc.intra, config_.cc_intra),
                                       registry.Create(config_.cc.inter, config_.cc_inter),
                                       registry.Create(config_.cc.intra, config_.cc_intra),
                                       base, config_.cc.Token());
}

void RdmaTransport::ScheduleFlow(const FlowSpec& spec) {
  Simulator& sim = net_->sim_of(spec.src);
  LCMP_CHECK(spec.start_time >= sim.now());
  RegisterFlow(spec);
  sim.ScheduleAt(spec.start_time, [this, spec]() { StartFlow(spec); });
}

void RdmaTransport::StartFlow(const FlowSpec& spec) {
  LCMP_CHECK(spec.size_bytes > 0);
  if (senders_.find(spec.id) == senders_.end()) {
    RegisterFlow(spec);  // direct StartFlow callers (unit tests) skip ScheduleFlow
  }
  Simulator& sim = net_->sim_of(spec.src);

  Sender& s = senders_.at(spec.id);
  LCMP_CHECK(!s.started);
  s.started = true;
  s.spec = spec;
  s.total_packets = static_cast<uint32_t>(
      (spec.size_bytes + config_.mtu_payload - 1) / config_.mtu_payload);
  s.start_time = sim.now();
  s.last_progress = sim.now();
  // Base RTT: both directions of the minimum-delay path plus one MTU of
  // serialization at the bottleneck.
  const PathMetric& m = oracle_.Metric(spec.src, spec.dst);
  LCMP_CHECK_MSG(m.reachable, "flow %llu has unreachable endpoints",
                 static_cast<unsigned long long>(spec.id));
  const TimeNs ser = SerializationDelay(config_.mtu_payload + kHeaderBytes,
                                        std::max<int64_t>(m.bottleneck_bps, 1));
  s.base_rtt = 2 * m.delay_ns + ser;
  // Conservative until the first ACK measures the actual route: the flow may
  // be placed on a path much slower than the minimum-delay one.
  s.rto = std::max<TimeNs>({config_.rto_min, config_.rto_rtt_multiplier * s.base_rtt,
                            config_.rto_initial});
  s.cc = BuildCc(spec, s.base_rtt);
  s.segmented = dynamic_cast<SegmentedCc*>(s.cc.get());
  s.cc->Init(LineRate(spec.src), s.base_rtt, sim.now());

  const FlowId id = spec.id;
  PaceNext(id);
  s.rto_timer = sim.ScheduleEvery(s.rto, [this, id] { OnRtoScan(id); });
}

void RdmaTransport::SchedulePacing(Sender& s, TimeNs delay) {
  s.pacing_active = true;
  const FlowId id = s.spec.id;
  auto pace = [this, id]() {
    auto it = senders_.find(id);
    if (it == senders_.end()) {
      return;
    }
    it->second.pacing_active = false;
    PaceNext(id);
  };
  static_assert(InlineEvent::kFitsInline<decltype(pace)>,
                "pacing closure must stay allocation-free");
  net_->sim_of(s.spec.src).Schedule(delay, std::move(pace));
}

void RdmaTransport::PaceNext(FlowId flow) {
  auto it = senders_.find(flow);
  if (it == senders_.end()) {
    return;
  }
  Sender& s = it->second;
  if (!s.started || s.done || s.pacing_active) {
    return;
  }
  const bool has_rtx = s.rtx.count() > 0;
  if (!has_rtx && s.next_seq >= s.total_packets) {
    return;  // everything sent; waiting for ACKs (RTO guards losses)
  }
  LCMP_PROFILE_SCOPE("transport.pace");
  HostNode& host = net_->host(s.spec.src);
  // NIC backpressure: if the host egress backlog is deep, wait for drain
  // instead of stacking more packets (RNIC QP arbitration, not self-drops).
  const Port& nic = host.port(0);
  if (nic.queue_bytes() > config_.host_backlog_bytes) {
    SchedulePacing(s, SerializationDelay(nic.queue_bytes() / 2, nic.rate_bps()));
    return;
  }
  // Bounded in-flight window: stall without rescheduling — the ACK / NACK /
  // RTO handlers all re-enter PaceNext, so sending resumes ACK-clocked the
  // moment the window reopens. Retransmissions are exempt: they lie inside
  // [acked, next_seq), whose bytes are already charged to the window, so
  // re-sending them must not shrink the effective window (double-counting
  // retransmitted bytes would stall the flow permanently at small windows).
  if (!has_rtx && config_.max_inflight_bytes > 0 &&
      InflightBytes(s) >= config_.max_inflight_bytes) {
    return;
  }

  uint32_t seq;
  if (has_rtx) {
    // Selective retransmissions drain ahead of new data, at the same paced
    // rate (IRN recovers through the normal send path, not an unpaced
    // side-channel blast).
    seq = s.rtx.PopFirst();
    s.retransmits.fetch_add(1, std::memory_order_relaxed);
    retransmitted_packets_.fetch_add(1, std::memory_order_relaxed);
    TransportMetrics::Get().retransmits->Inc();
  } else {
    seq = s.next_seq;
    ++s.next_seq;
  }
  Packet pkt = MakeDataPacket(s, seq);
  data_packets_sent_.fetch_add(1, std::memory_order_relaxed);
  TransportMetrics::Get().data_sent->Inc();

  if (config_.emulation_mode) {
    HostNode* hp = &host;
    const TimeNs slot = EmuPipelineSlot(emu_tx_ready_, s.spec.src);
    auto send = [hp, pkt]() mutable { hp->Send(std::move(pkt)); };
    static_assert(InlineEvent::kFitsInline<decltype(send)>,
                  "host send closure must stay allocation-free");
    net_->sim().Schedule(slot - net_->sim().now(), std::move(send));
  } else {
    host.Send(std::move(pkt));
  }

  // Pace the next segment at the congestion-controlled rate. The host-stack
  // overhead is a pipelined latency stage (it delays each packet but does
  // not throttle the stream), so it does not enter the pacing gap.
  const int64_t rate = std::clamp<int64_t>(s.cc->rate_bps(), Mbps(10), LineRate(s.spec.src));
  const TimeNs gap = SerializationDelay(pkt.size_bytes, rate);
  SchedulePacing(s, gap);
}

Packet RdmaTransport::MakeDataPacket(const Sender& s, uint32_t seq) const {
  Packet pkt;
  pkt.type = PacketType::kData;
  pkt.key = s.spec.key;
  pkt.flow_id = s.spec.id;
  pkt.src = s.spec.src;
  pkt.dst = s.spec.dst;
  pkt.seq = seq;
  const uint64_t offset = static_cast<uint64_t>(seq) * config_.mtu_payload;
  pkt.payload_bytes = static_cast<uint32_t>(
      std::min<uint64_t>(config_.mtu_payload, s.spec.size_bytes - offset));
  pkt.size_bytes = pkt.payload_bytes + kHeaderBytes;
  pkt.last_of_flow = (seq + 1 == s.total_packets);
  pkt.sent_ts = net_->sim_of(s.spec.src).now();
  if (net_->config().enable_int) {
    pkt.int_stack = net_->int_pool().Acquire();
  }
  return pkt;
}

void RdmaTransport::QueueRetransmitRange(Sender& s, uint32_t lo, uint32_t hi) {
  // Clamp to the live in-flight span: nothing below the cumulative ACK is
  // missing, nothing at/after next_seq has been transmitted yet.
  lo = std::max(lo, s.acked);
  hi = std::min(hi, s.next_seq);
  s.rtx.AdvanceBaseTo(s.acked);
  for (uint32_t seq = lo; seq < hi; ++seq) {
    s.rtx.Insert(seq);  // bitmap dedup: already-pending segments are no-ops
  }
}

// Periodic RTO scan (one recurring timer per flow). Fires every `rto`; a
// full period without cumulative-ACK progress while data is outstanding
// triggers Go-Back-N recovery.
void RdmaTransport::OnRtoScan(FlowId flow) {
  auto sit = senders_.find(flow);
  if (sit == senders_.end() || sit->second.done) {
    return;  // FinishSender cancelled the timer; nothing to do
  }
  Sender& s = sit->second;
  Simulator& sim = net_->sim_of(s.spec.src);
  if (s.acked == s.acked_at_last_rto && s.next_seq > s.acked) {
    LCMP_PROFILE_SCOPE("transport.rto_recovery");
    // No progress across one full RTO with data outstanding.
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    TransportMetrics::Get().timeouts->Inc();
    if (Irn()) {
      // Selective repeat: probe the first unacked segment instead of
      // re-blasting the window. Its delivery either fills the hole (the
      // cumulative ACK then advances past everything the receiver buffered)
      // or arrives as a duplicate whose ACK reports the next hole — and the
      // receiver NACKs remaining holes on every arrival, re-arming the
      // selective path. Pending rtx entries are stale by one RTO; rebuild
      // from the probe.
      s.rtx.ClearAll();
      s.rtx.AdvanceBaseTo(s.acked);
      QueueRetransmitRange(s, s.acked, s.acked + 1);
      // The epoch guard must not swallow the next NACK for this hole: the
      // timeout proves the previous request (or its repair) was lost.
      s.rtx_epoch_lo = UINT32_MAX;
      s.rtx_epoch_hi = 0;
    } else {
      // Go-Back-N: rewind to the cumulative ACK and resend everything.
      s.retransmits.fetch_add(s.next_seq - s.acked, std::memory_order_relaxed);
      retransmitted_packets_.fetch_add(s.next_seq - s.acked, std::memory_order_relaxed);
      TransportMetrics::Get().retransmits->Add(s.next_seq - s.acked);
      s.next_seq = s.acked;
      s.rtx_epoch_lo = UINT32_MAX;
    }
    const int64_t rate_before = obs::TraceEnabled() ? s.cc->rate_bps() : 0;
    s.cc->OnTimeout(sim.now());
    LCMP_TRACE(obs::TraceEv::kCcRateChange, sim.now(), flow, s.spec.src, kInvalidPort,
               s.cc->rate_bps() - rate_before);
    TransportMetrics::Get().cc_rate->Set(s.cc->rate_bps());
    PaceNext(flow);
  }
  s.acked_at_last_rto = s.acked;
  // The adaptive RTO estimate feeds the timer's next period.
  sim.SetTimerInterval(s.rto_timer, s.rto);
}

void RdmaTransport::OnHostReceive(NodeId host, Packet pkt) {
  if (config_.emulation_mode) {
    const TimeNs slot = EmuPipelineSlot(emu_rx_ready_, host);
    auto process = [this, host, pkt = std::move(pkt)]() mutable {
      ProcessPacket(host, std::move(pkt));
    };
    static_assert(InlineEvent::kFitsInline<decltype(process)>,
                  "host receive closure must stay allocation-free");
    net_->sim().Schedule(slot - net_->sim().now(), std::move(process));
  } else {
    ProcessPacket(host, std::move(pkt));
  }
}

void RdmaTransport::ProcessPacket(NodeId host, Packet pkt) {
  switch (pkt.type) {
    case PacketType::kData:
      HandleData(host, pkt);
      break;
    case PacketType::kAck:
      HandleAck(pkt);
      break;
    case PacketType::kNack:
      HandleNack(pkt);
      break;
    case PacketType::kCnp:
      HandleCnp(pkt);
      break;
    case PacketType::kFecRepair:
      // Repair symbols are absorbed at the receiving DCI gateway and never
      // reach a host; tolerate one anyway (degenerate single-switch topos).
      net_->int_pool().ReleaseFrom(pkt);
      break;
  }
}

void RdmaTransport::HandleData(NodeId host, Packet& pkt) {
  LCMP_PROFILE_SCOPE("transport.handle_data");
  const FlowId id = pkt.flow_id;
  auto rit = receivers_.find(id);
  if (rit == receivers_.end() || rit->second.finished) {
    net_->int_pool().ReleaseFrom(pkt);
    return;  // unknown flow or stale segment of a completed one
  }
  Receiver& r = rit->second;
  Simulator& sim = net_->sim_of(host);
  HostNode& h = net_->host(host);

  // NACKs reuse payload_bytes (unused on control packets) as the SACK-style
  // hole end: the sender retransmits exactly [seq, hole_end). hole_end == 0
  // (Go-Back-N NACKs) means "no range information".
  auto reply = [&](PacketType type, uint32_t seq, uint32_t hole_end = 0) {
    Packet out;
    out.type = type;
    out.key = ReverseKey(pkt.key);
    out.flow_id = id;
    out.src = pkt.dst;
    out.dst = pkt.src;
    out.seq = seq;
    out.payload_bytes = hole_end;
    out.size_bytes = kControlPacketBytes;
    out.sent_ts = pkt.sent_ts;  // echoed for sender RTT measurement
    if (type == PacketType::kAck) {
      out.ecn_echo = pkt.ecn_ce;
      // Segmented-CC demux: echo the gateway stamps and the per-segment ECN
      // mask so the sender can split the RTT and route the marks.
      out.gw_src_off = pkt.gw_src_off;
      out.gw_dst_off = pkt.gw_dst_off;
      out.ecn_mask = pkt.ecn_mask;
      // Echo the INT stack back to the sender (HPCC): the ACK inherits the
      // DATA packet's pooled side-buffer instead of copying it.
      out.int_stack = pkt.int_stack;
      pkt.int_stack = kInvalidIntHandle;
    }
    h.Send(std::move(out));
  };

  // DCQCN notification point: CE-marked arrivals emit paced CNPs.
  if (pkt.ecn_ce && sim.now() - r.last_cnp >= config_.cnp_interval) {
    r.last_cnp = sim.now();
    Packet cnp;
    cnp.type = PacketType::kCnp;
    cnp.key = ReverseKey(pkt.key);
    cnp.flow_id = id;
    cnp.src = pkt.dst;
    cnp.dst = pkt.src;
    cnp.size_bytes = kControlPacketBytes;
    cnp.ecn_mask = pkt.ecn_mask;  // which segment(s) marked, for SegmentedCc
    h.Send(std::move(cnp));
  }

  if (pkt.seq == r.expected_seq) {
    ++r.expected_seq;
    r.received_bytes += pkt.payload_bytes;
    // IRN: drain buffered segments that are now in sequence (bit test +
    // clear per segment, no tree walk, no frees).
    if (Irn()) {
      while (r.ooo.TakeIfSet(r.expected_seq)) {
        ++r.expected_seq;
      }
      r.ooo.AdvanceBaseTo(r.expected_seq);
    }
    reply(PacketType::kAck, r.expected_seq);
    // Holes left behind the drained run keep the selective path armed: the
    // sender learns the next missing range without waiting for another
    // out-of-order arrival (lost *retransmissions* would otherwise only be
    // recovered by RTO probes, one hole per timeout).
    if (Irn() && sim.now() - r.last_nack >= config_.nack_min_interval) {
      if (r.ooo.count() > 0) {
        r.last_nack = sim.now();
        reply(PacketType::kNack, r.expected_seq, r.ooo.FirstSet());
      } else if (r.expected_seq < r.ooo_overflow_hi) {
        // The window overflowed earlier and has now drained: everything up
        // to the overflow mark was discarded unbuffered, so keep requesting
        // that tail instead of degrading to one RTO probe per segment.
        r.last_nack = sim.now();
        reply(PacketType::kNack, r.expected_seq, r.ooo_overflow_hi);
      }
    }
    auto sit = senders_.find(id);
    if (sit != senders_.end() && r.received_bytes >= sit->second.spec.size_bytes) {
      // Full payload delivered in order: the flow is complete.
      FlowRecord rec;
      rec.spec = sit->second.spec;
      rec.start_time = sit->second.start_time;
      rec.complete_time = sim.now();
      rec.total_packets = sit->second.total_packets;
      rec.retransmitted_packets = sit->second.retransmits.load(std::memory_order_relaxed);
      rec.base_rtt = sit->second.base_rtt;
      completed_flows_.fetch_add(1, std::memory_order_relaxed);
      TransportMetrics::Get().flows_completed->Inc();
      r.finished = true;
      if (on_complete_) {
        on_complete_(rec);
      }
    }
  } else if (pkt.seq > r.expected_seq) {
    if (Irn()) {
      // IRN lightweight OoO tracking: buffer the segment in the bitmap
      // window (out-of-window segments are dropped and re-sent later) and
      // request a *selective* retransmission of the first hole,
      // [expected_seq, first buffered segment).
      if (r.ooo.Insert(pkt.seq)) {
        r.received_bytes += pkt.payload_bytes;
      } else {
        // Out of window: discarded, but remember how far the sender got so
        // the in-order path can re-request the tail once the window drains.
        r.ooo_overflow_hi = std::max(r.ooo_overflow_hi, pkt.seq + 1);
      }
      if (sim.now() - r.last_nack >= config_.nack_min_interval) {
        r.last_nack = sim.now();
        // If the window overflowed and nothing is buffered, everything up to
        // this arrival is missing.
        const uint32_t hole_end = r.ooo.count() > 0 ? r.ooo.FirstSet() : pkt.seq;
        reply(PacketType::kNack, r.expected_seq, hole_end);
      }
      // A fully buffered tail can complete the flow once the hole fills; the
      // in-order branch above performs the drain and the completion check.
    } else if (sim.now() - r.last_nack >= config_.nack_min_interval) {
      // Gap: commodity RNIC behavior, request Go-Back-N from the hole.
      r.last_nack = sim.now();
      reply(PacketType::kNack, r.expected_seq);
    }
  } else {
    // Duplicate of an already-delivered segment: re-ACK so the sender moves.
    reply(PacketType::kAck, r.expected_seq);
  }
  // Any INT stack not transferred onto an ACK dies with the data packet.
  net_->int_pool().ReleaseFrom(pkt);
}

void RdmaTransport::HandleAck(Packet& pkt) {
  LCMP_PROFILE_SCOPE("transport.handle_ack");
  auto it = senders_.find(pkt.flow_id);
  if (it == senders_.end() || it->second.done || !it->second.started) {
    net_->int_pool().ReleaseFrom(pkt);
    return;
  }
  Sender& s = it->second;
  Simulator& sim = net_->sim_of(s.spec.src);
  if (pkt.seq > s.acked) {
    s.acked = pkt.seq;
    s.last_progress = sim.now();
    if (s.next_seq < s.acked) {
      s.next_seq = s.acked;  // cumulative ACK outran a Go-Back-N rewind
    }
    // Pending selective retransmits the cumulative ACK has passed are no
    // longer missing.
    s.rtx.AdvanceBaseTo(s.acked);
  }
  const TimeNs rtt = sim.now() - pkt.sent_ts;
  if (rtt > 0) {
    // SRTT EWMA (7/8 old + 1/8 new) drives the adaptive RTO.
    s.srtt = s.srtt == 0 ? rtt : (7 * s.srtt + rtt) / 8;
    s.rto = std::max<TimeNs>(config_.rto_min, config_.rto_rtt_multiplier * s.srtt);
  }
  const IntStack* telemetry =
      pkt.int_stack != kInvalidIntHandle ? &net_->int_pool().Get(pkt.int_stack) : nullptr;
  const int64_t rate_before = obs::TraceEnabled() ? s.cc->rate_bps() : 0;
  s.cc->OnAck(pkt, telemetry, rtt, sim.now());
  if (obs::TraceEnabled() && s.cc->rate_bps() != rate_before) {
    LCMP_TRACE(obs::TraceEv::kCcRateChange, sim.now(), pkt.flow_id, s.spec.src, kInvalidPort,
               s.cc->rate_bps() - rate_before);
  }
  TransportMetrics::Get().cc_rate->Set(s.cc->rate_bps());
  if (s.segmented != nullptr) {
    SetSegmentGauges(*s.segmented);
  }
  net_->int_pool().ReleaseFrom(pkt);
  if (s.acked >= s.total_packets) {
    FinishSender(s);
    return;
  }
  PaceNext(pkt.flow_id);
}

void RdmaTransport::HandleNack(const Packet& pkt) {
  LCMP_PROFILE_SCOPE("transport.handle_nack");
  auto it = senders_.find(pkt.flow_id);
  if (it == senders_.end() || it->second.done || !it->second.started) {
    return;
  }
  nacks_.fetch_add(1, std::memory_order_relaxed);
  TransportMetrics::Get().nacks->Inc();
  Sender& s = it->second;
  const TimeNs now = net_->sim_of(s.spec.src).now();
  if (pkt.seq > s.acked) {
    s.acked = pkt.seq;
    s.last_progress = now;
    s.rtx.AdvanceBaseTo(s.acked);
  }
  // Retransmit-epoch guard: NACKs for one gap arrive once per received
  // packet (paced only by nack_min_interval, typically far below the
  // long-haul RTT), but a retransmission needs a full RTT to take effect.
  // Honoring every duplicate meant Go-Back-N re-blasted the same window
  // several times per loss; one epoch per hole per RTT.
  const TimeNs epoch = s.srtt > 0 ? s.srtt : s.base_rtt;
  const bool same_gap = pkt.seq == s.rtx_epoch_lo && now - s.rtx_epoch_time < epoch;
  if (Irn()) {
    // SACK range [seq, payload_bytes); legacy range-free NACKs ask for
    // just the hole-start segment.
    const uint32_t hole_end = std::max(pkt.payload_bytes, pkt.seq + 1);
    uint32_t lo = pkt.seq;
    const bool in_epoch = s.rtx_epoch_lo != UINT32_MAX && now - s.rtx_epoch_time < epoch;
    if (in_epoch) {
      // Within one RTT of the last request, everything below the epoch's
      // high-water mark is already queued or in flight; re-requesting it
      // would duplicate a full pipe of retransmissions per NACK. Only the
      // part of the range above the mark is new.
      lo = std::max(lo, s.rtx_epoch_hi);
    } else {
      s.rtx_epoch_lo = pkt.seq;
      s.rtx_epoch_time = now;
      s.rtx_epoch_hi = pkt.seq;  // expired: a still-open hole is fair game
    }
    if (lo < hole_end) {
      s.rtx_epoch_hi = std::max(s.rtx_epoch_hi, hole_end);
      QueueRetransmitRange(s, lo, hole_end);
    }
  } else if (pkt.seq < s.next_seq && !same_gap) {
    // Go-Back-N: rewind to the receiver's hole and resend everything after.
    s.rtx_epoch_lo = pkt.seq;
    s.rtx_epoch_time = now;
    s.retransmits.fetch_add(s.next_seq - pkt.seq, std::memory_order_relaxed);
    retransmitted_packets_.fetch_add(s.next_seq - pkt.seq, std::memory_order_relaxed);
    s.next_seq = pkt.seq;
  }
  PaceNext(pkt.flow_id);
}

void RdmaTransport::HandleCnp(const Packet& pkt) {
  LCMP_PROFILE_SCOPE("transport.handle_cnp");
  auto it = senders_.find(pkt.flow_id);
  if (it == senders_.end() || it->second.done || !it->second.started) {
    return;
  }
  cnps_.fetch_add(1, std::memory_order_relaxed);
  TransportMetrics::Get().cnps->Inc();
  Sender& s = it->second;
  Simulator& sim = net_->sim_of(s.spec.src);
  const int64_t rate_before = obs::TraceEnabled() ? s.cc->rate_bps() : 0;
  s.cc->OnCnp(sim.now(), pkt.ecn_mask);
  if (obs::TraceEnabled() && s.cc->rate_bps() != rate_before) {
    LCMP_TRACE(obs::TraceEv::kCcRateChange, sim.now(), pkt.flow_id, s.spec.src, kInvalidPort,
               s.cc->rate_bps() - rate_before);
  }
  TransportMetrics::Get().cc_rate->Set(s.cc->rate_bps());
  if (s.segmented != nullptr) {
    SetSegmentGauges(*s.segmented);
  }
}

void RdmaTransport::FinishSender(Sender& s) {
  // The entry stays in the map (done flips instead of erasing) so concurrent
  // cross-shard find() never races a rehash; the done guard above makes a
  // second finish — or a recycled-TimerId cancel — impossible.
  s.done = true;
  net_->sim_of(s.spec.src).CancelTimer(s.rto_timer);
}

}  // namespace lcmp
