// Reliability modes of the RDMA transport (DESIGN.md §15).
//
// kGoBackN models commodity RNICs: any out-of-order arrival is treated as a
// loss and the sender rewinds to the receiver's cumulative hole. kIrn models
// IRN-style selective repeat ("lightweight OoO tracking", the paper's
// Sec. 7.5 future direction): the receiver buffers out-of-order segments in a
// fixed bitmap window and NACKs carry a SACK-style [hole_start, hole_end)
// range, so the sender retransmits exactly the missing segments through a
// paced retransmit queue.
#pragma once

#include <cstdint>
#include <string>

namespace lcmp {

enum class ReliabilityMode : uint8_t {
  kGoBackN,  // commodity RNIC semantics: OOO arrival == loss, rewind
  kIrn,      // selective repeat with bitmap OOO tracking + SACK-range NACKs
};

inline const char* ReliabilityModeToken(ReliabilityMode mode) {
  return mode == ReliabilityMode::kIrn ? "irn" : "gbn";
}

inline bool ParseReliabilityMode(const std::string& text, ReliabilityMode* out,
                                 std::string* error) {
  if (text == "gbn" || text == "go_back_n" || text == "go-back-n") {
    *out = ReliabilityMode::kGoBackN;
    return true;
  }
  if (text == "irn" || text == "selective") {
    *out = ReliabilityMode::kIrn;
    return true;
  }
  if (error != nullptr) {
    *error = "unknown reliability mode '" + text + "' (expected gbn|irn)";
  }
  return false;
}

}  // namespace lcmp
