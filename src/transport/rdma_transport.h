// RDMA transport model: per-flow rate-paced senders with cumulative ACKs,
// NACK-triggered Go-Back-N (commodity RNICs treat out-of-order arrival as
// loss, Sec. 7.5), receiver-side CNP generation for DCQCN, and retransmission
// timeouts as the last-resort recovery (needed for link-failure experiments).
//
// One RdmaTransport instance manages every host in the network: it registers
// itself as each HostNode's packet sink and keeps per-flow sender/receiver
// state keyed by flow id.
// Sharded runs (DESIGN.md §12) share ONE transport across shard worker
// threads; the state is partitioned by construction rather than by locks.
// Sender state is touched only by events homed on the flow's source shard
// (pacing, RTO scans, and ACK/NACK/CNP handling all execute on the source
// host); receiver state only by the destination shard (DATA delivery). The
// per-flow map entries are pre-registered during single-threaded setup and
// never erased at runtime, so concurrent find() never races a rehash.
// Process-wide tallies are relaxed atomics (totals are deterministic; only
// the interleaving isn't), and a completing flow reads the sender's
// setup-written fields across shards only after at least one cross-shard
// packet handoff — whose channel + barrier ordering publishes them.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "sim/network.h"
#include "topo/candidate_paths.h"
#include "transport/cc/cc_registry.h"
#include "transport/cc/segmented_cc.h"
#include "transport/flow.h"
#include "transport/reliability.h"
#include "transport/seq_window.h"

namespace lcmp {

struct TransportConfig {
  uint32_t mtu_payload = kDefaultMtuPayload;

  // Segment-split congestion control (DESIGN.md §14): which registry token
  // runs on the long-haul and end-fabric segments, plus per-segment tuning
  // bundles. A uniform spec (inter == intra, the default) instantiates one
  // controller end to end — the legacy behavior, bit for bit; a split spec
  // builds the SegmentedCc composite for cross-DC flows.
  SegmentCcSpec cc;
  CcTuning cc_inter;
  CcTuning cc_intra;
  // Receiver-side DCQCN CNP pacing.
  TimeNs cnp_interval = Microseconds(50);
  // Minimum spacing of duplicate NACKs per flow.
  TimeNs nack_min_interval = Microseconds(100);
  // Retransmission timeout: starts at max(rto_initial, rto_rtt_multiplier *
  // base_rtt) and adapts to rto_rtt_multiplier * SRTT once ACKs measure the
  // actual path (the chosen route may be far slower than the minimum-delay
  // path the base RTT is computed from).
  TimeNs rto_min = Milliseconds(1);
  TimeNs rto_initial = Seconds(2);
  int rto_rtt_multiplier = 3;
  // NIC backpressure: pacing stalls while the host egress backlog exceeds
  // this (RNICs arbitrate QPs instead of dropping their own traffic).
  int64_t host_backlog_bytes = 256 * 1024;
  // Bounded in-flight window: pacing stalls once the unacked byte count
  // reaches this cap and resumes ACK-clocked (real RNICs bound outstanding
  // WQEs). 0 = unbounded — the legacy open-loop sender, which transmits any
  // sub-BDP flow in full before the first feedback arrives and therefore
  // never lets the congestion controller shape it. The incast /
  // oversubscription scenario family runs windowed so the inter-DC CC choice
  // is observable (DESIGN.md §14).
  int64_t max_inflight_bytes = 0;

  // Loss/reorder recovery scheme (transport/reliability.h, DESIGN.md §15).
  // kGoBackN reproduces commodity RNICs (OOO arrival == loss, rewind to the
  // hole); kIrn is selective repeat: the receiver tracks out-of-order
  // segments in a fixed bitmap window, NACKs carry SACK-style
  // [hole_start, hole_end) ranges, and the sender retransmits exactly the
  // missing segments through a paced retransmit queue. IRN enables
  // flowlet/per-packet steering and lossy long-haul links without the
  // throughput collapse Go-Back-N suffers on reordering.
  ReliabilityMode reliability = ReliabilityMode::kGoBackN;
  // Deprecated alias for reliability == kIrn (the original bench hack's
  // flag); honored so existing configs and sweep axes keep working.
  bool ooo_tolerance = false;
  // Receiver OOO window / sender retransmit window, in segments (rounded up
  // to a power of two). Segments beyond the window are dropped and re-sent
  // on a later NACK or RTO.
  int ooo_window_segments = 2048;

  // "Emulation mode" reproduces the paper's SoftRoCE/Mininet testbed: extra
  // per-packet host-stack latency with jitter (a pipelined processing stage)
  // and an optional software rate cap. The default cap is high enough that
  // the emulated and simulated runs model the same network capacity, which
  // is the premise of the paper's Fig. 6 fidelity comparison.
  bool emulation_mode = false;
  TimeNs emu_overhead_mean = Microseconds(10);
  TimeNs emu_overhead_stddev = Microseconds(3);
  int64_t emu_rate_cap_bps = Gbps(100);
};

class RdmaTransport {
 public:
  using CompletionFn = std::function<void(const FlowRecord&)>;

  RdmaTransport(Network* net, const TransportConfig& config, CompletionFn on_complete);

  RdmaTransport(const RdmaTransport&) = delete;
  RdmaTransport& operator=(const RdmaTransport&) = delete;

  // Begins transmitting `spec` at the current simulation time.
  void StartFlow(const FlowSpec& spec);

  // Schedules StartFlow at spec.start_time (must be >= now) on the source
  // host's home shard. Also pre-registers the flow's sender/receiver map
  // entries and warms the path-metric cache, so sharded runs perform no
  // shared-map mutation after setup.
  void ScheduleFlow(const FlowSpec& spec);

  // --- statistics ---
  int active_senders() const {
    int n = 0;
    for (const auto& [id, s] : senders_) {
      n += (s.started && !s.done) ? 1 : 0;
    }
    return n;
  }
  int64_t completed_flows() const { return completed_flows_.load(std::memory_order_relaxed); }
  int64_t data_packets_sent() const { return data_packets_sent_.load(std::memory_order_relaxed); }
  int64_t retransmitted_packets() const {
    return retransmitted_packets_.load(std::memory_order_relaxed);
  }
  int64_t nacks_received() const { return nacks_.load(std::memory_order_relaxed); }
  int64_t cnps_received() const { return cnps_.load(std::memory_order_relaxed); }
  int64_t timeouts() const { return timeouts_.load(std::memory_order_relaxed); }
  const SegmentCcSpec& cc_spec() const { return config_.cc; }

  // Test hook: the controller driving `flow`, nullptr for unknown flows.
  // For split cross-DC flows this is the SegmentedCc composite.
  const CongestionControl* flow_cc(FlowId flow) const {
    const auto it = senders_.find(flow);
    return it != senders_.end() ? it->second.cc.get() : nullptr;
  }

 private:
  struct Sender {
    FlowSpec spec;
    std::unique_ptr<CongestionControl> cc;
    // Non-null iff `cc` is the SegmentedCc composite (avoids a per-ACK
    // dynamic_cast when exporting the per-segment rate gauges).
    SegmentedCc* segmented = nullptr;
    uint32_t total_packets = 0;
    uint32_t next_seq = 0;   // next segment to transmit
    uint32_t acked = 0;      // cumulative segments acknowledged
    TimeNs start_time = 0;
    TimeNs base_rtt = 0;
    TimeNs srtt = 0;  // smoothed measured RTT; 0 until the first sample
    TimeNs rto = 0;
    TimeNs last_progress = 0;
    bool started = false;  // registered at setup; StartFlow fired at runtime
    bool pacing_active = false;
    bool done = false;
    // Mutated on the source shard, sampled on the destination shard at
    // completion; atomic for race-freedom, and kept out of the digest.
    std::atomic<uint32_t> retransmits{0};
    // Recurring RTO scan: one stored callable for the flow's lifetime; the
    // period follows the adaptive `rto` via Simulator::SetTimerInterval.
    Simulator::TimerId rto_timer = Simulator::kInvalidTimer;
    uint32_t acked_at_last_rto = 0;  // progress snapshot at the last scan
    // IRN only: pending selective retransmits (base tracks `acked`). Sized
    // at registration; retransmissions drain through PaceNext at the CC
    // rate, ahead of new data.
    SeqWindow rtx;
    // Retransmit-epoch guard: the last NACK hole start honored and when.
    // Duplicate requests for the same hole within one RTT are suppressed —
    // in both modes (a Go-Back-N rewind re-sends a full window; repeating it
    // per duplicate NACK multiplies the blast).
    uint32_t rtx_epoch_lo = UINT32_MAX;
    uint32_t rtx_epoch_hi = 0;  // IRN: high-water of ranges requested this epoch
    TimeNs rtx_epoch_time = -Seconds(1);
  };
  struct Receiver {
    uint32_t expected_seq = 0;
    uint64_t received_bytes = 0;
    TimeNs last_cnp = -Seconds(1);
    TimeNs last_nack = -Seconds(1);
    bool finished = false;  // completed; absorbs stragglers/duplicates
    // IRN only: buffered out-of-order segments beyond expected_seq, as a
    // fixed ring bitmap (base tracks expected_seq). Replaces the former
    // std::set tracker that heap-allocated per buffered segment.
    SeqWindow ooo;
    // IRN only: one past the highest segment discarded on window overflow
    // (open-loop senders can outrun the bitmap). While expected_seq is below
    // this mark the discarded tail is known-missing, and the in-order path
    // keeps NACKing it; without the mark an overflowed-then-drained window
    // degrades to one RTO probe per missing segment.
    uint32_t ooo_overflow_hi = 0;
  };

  // HandleData/HandleAck take the packet by mutable reference: they assume
  // ownership of its INT side-buffer handle (transferring it onto the ACK or
  // releasing it back to the network's pool).
  void OnHostReceive(NodeId host, Packet pkt);
  void ProcessPacket(NodeId host, Packet pkt);
  void HandleData(NodeId host, Packet& pkt);
  void HandleAck(Packet& pkt);
  void HandleNack(const Packet& pkt);
  void HandleCnp(const Packet& pkt);

  void RegisterFlow(const FlowSpec& spec);
  // Instantiates the flow's controller from config_.cc: one plain algorithm
  // for uniform specs and intra-DC flows, the SegmentedCc composite (with
  // per-segment base RTTs from the path oracle) for split cross-DC flows.
  std::unique_ptr<CongestionControl> BuildCc(const FlowSpec& spec, TimeNs whole_path_base_rtt);
  void PaceNext(FlowId flow);
  Packet MakeDataPacket(const Sender& s, uint32_t seq) const;
  // IRN: queues [lo, hi) for paced selective retransmission, clamped to the
  // sender's in-flight span and deduplicated by the rtx bitmap.
  void QueueRetransmitRange(Sender& s, uint32_t lo, uint32_t hi);
  void SchedulePacing(Sender& s, TimeNs delay);
  bool Irn() const { return config_.reliability == ReliabilityMode::kIrn; }
  // Bytes charged against the bounded in-flight window. Retransmissions lie
  // inside [acked, next_seq) and so are never double-counted — a lost
  // packet's bytes stay charged until the cumulative ACK passes it.
  int64_t InflightBytes(const Sender& s) const {
    return static_cast<int64_t>(s.next_seq - s.acked) * config_.mtu_payload;
  }
  void OnRtoScan(FlowId flow);
  void FinishSender(Sender& s);

  int64_t LineRate(NodeId host) const;
  TimeNs HostOverhead(NodeId host);
  // Emulation-mode host stacks are FIFO pipelines: jittered per-packet
  // processing must never reorder packets within one host, or the jitter
  // itself would trigger spurious Go-Back-N. Returns the absolute time the
  // packet clears the stage and advances the per-host cursor.
  TimeNs EmuPipelineSlot(std::unordered_map<NodeId, TimeNs>& ready, NodeId host);

  Network* net_;
  TransportConfig config_;
  CompletionFn on_complete_;
  PathOracle oracle_;

  std::unordered_map<NodeId, TimeNs> emu_tx_ready_;
  std::unordered_map<NodeId, TimeNs> emu_rx_ready_;
  // Pre-registered at ScheduleFlow, never erased at runtime (flows flip
  // started/done/finished flags instead), so shard threads only ever find().
  std::unordered_map<FlowId, Sender> senders_;
  std::unordered_map<FlowId, Receiver> receivers_;

  std::atomic<int64_t> completed_flows_{0};
  std::atomic<int64_t> data_packets_sent_{0};
  std::atomic<int64_t> retransmitted_packets_{0};
  std::atomic<int64_t> nacks_{0};
  std::atomic<int64_t> cnps_{0};
  std::atomic<int64_t> timeouts_{0};
};

}  // namespace lcmp
