// Flow descriptors shared between the traffic generator, the transport and
// the statistics pipeline. Header-only so workload/ and stats/ can consume
// them without linking the transport.
#pragma once

#include <cstdint>

#include "common/hashing.h"
#include "common/types.h"

namespace lcmp {

// A unidirectional RDMA transfer request.
struct FlowSpec {
  FlowId id = 0;
  FlowKey key;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  uint64_t size_bytes = 0;
  TimeNs start_time = 0;
};

// Completion record delivered when the receiver has the full payload.
struct FlowRecord {
  FlowSpec spec;
  TimeNs start_time = 0;     // when the first packet was handed to the NIC
  TimeNs complete_time = 0;  // when the last in-order byte arrived
  uint32_t total_packets = 0;
  uint32_t retransmitted_packets = 0;
  TimeNs base_rtt = 0;
};

}  // namespace lcmp
